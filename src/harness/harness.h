#ifndef LLMULATOR_HARNESS_HARNESS_H
#define LLMULATOR_HARNESS_HARNESS_H

/**
 * @file
 * Shared experiment harness: dataset assembly, model training with on-disk
 * caching, and per-workload evaluation loops. Every bench binary drives
 * its table/figure through these entry points so training artifacts are
 * shared across the suite.
 */

#include <functional>
#include <memory>
#include <string>

#include "baselines/gnnhls.h"
#include "baselines/tenset_mlp.h"
#include "baselines/tlp.h"
#include "harness/trainer.h"
#include "model/cost_model.h"
#include "model/fast_encoder.h"
#include "synth/dataset.h"
#include "workloads/workloads.h"

namespace llmulator {
namespace harness {

/**
 * Training-loop knobs (shared by all learned models). All training runs
 * through the deterministic minibatch engine in harness/trainer.h; the
 * fields marked math-affecting are part of every model-cache key.
 */
struct TrainConfig
{
    int epochs = 6;        //!< math-affecting
    float lr = 2e-3f;      //!< math-affecting
    uint64_t seed = 99;    //!< math-affecting (epoch shuffle order)
    /** Samples per optimizer step (gradients are minibatch means). */
    int batchSize = 8;     //!< math-affecting
    /**
     * Worker threads for the engine; <= 0 resolves through
     * resolveTrainThreads() ($LLMULATOR_TRAIN_THREADS, else hardware).
     * Training is bit-identical for any thread count, so this knob is
     * deliberately NOT part of the model-cache key.
     */
    int trainThreads = 0;
    /**
     * Opt-in intra-batch training (math-affecting when on): each
     * minibatch runs as one batch-first forward/backward graph instead
     * of per-sample passes across threads — see
     * TrainerConfig::intraBatch. Only the cost model has a batched
     * loss; the baselines silently fall back to the per-sample path.
     * Hashed into cache keys only when set, so default-config keys are
     * unchanged.
     */
    bool intraBatch = false;
};

/**
 * Smoke mode shrinks the default dataset and training schedule so every
 * example/bench finishes in seconds instead of minutes. Enabled by the
 * LLMULATOR_SMOKE environment variable (any value except "0") or
 * programmatically via forceSmokeMode() (the bench `--quick` flag).
 */
bool smokeMode();

/** Override the LLMULATOR_SMOKE environment detection. */
void forceSmokeMode(bool on);

/** Default synthesizer config shared by the bench suite (cache-stable). */
synth::SynthConfig defaultSynthConfig();

/** Default LLMulator config (ModelScale::Small, progressive encoding). */
model::CostModelConfig defaultOursConfig();

/** NoEnc ablation config (whole-number tokens, Table 3 "NoEnc" columns). */
model::CostModelConfig noEncConfig();

/** Default training schedule shared by the bench suite. */
TrainConfig defaultTrainConfig();

/**
 * The default training corpus: the Section 6 synthesizer output plus
 * LLM-style mutations of the evaluation workload *families* (never the
 * evaluation instances themselves) — the synthesizer's stage-3 coverage of
 * "realistic scenarios" (Section 6.1). All models in a bench train on the
 * same corpus, mirroring the paper's fairness note (Section 7.1).
 */
synth::Dataset defaultDataset(const synth::SynthConfig& cfg = {});

/** Append mutated variants of the given workloads to a dataset. */
void addWorkloadFamilyData(synth::Dataset& ds,
                           const std::vector<workloads::Workload>& ws,
                           int variants_per_workload, uint64_t seed);

/**
 * Train (or load from cache) a CostModel on the dataset. The cache key
 * combines 'tag' with the model config, dataset identity and every
 * math-affecting TrainConfig field.
 */
std::unique_ptr<model::CostModel>
trainCostModel(const model::CostModelConfig& mcfg, const synth::Dataset& ds,
               const TrainConfig& tcfg, const std::string& tag);

/**
 * Train an already-constructed CostModel in place through the minibatch
 * engine, bypassing the model cache — the path for throughput benches
 * and determinism tests that must measure/verify real training. A
 * non-empty tag enables per-epoch progress lines.
 */
TrainStats trainCostModelUncached(model::CostModel& m,
                                  const synth::Dataset& ds,
                                  const TrainConfig& tcfg,
                                  const std::string& tag = "");

/**
 * Same, over an already pre-encoded corpus (encs[i] must encode
 * ds.samples[i]; encodings are weight-independent, so one set can be
 * shared across runs). This is the exact engine path — the throughput
 * bench uses it to time training without the serial encode cost.
 */
TrainStats trainCostModelUncached(
    model::CostModel& m, const synth::Dataset& ds,
    const std::vector<model::TrainingEncoding>& encs,
    const TrainConfig& tcfg, const std::string& tag = "");

/** Train (or load) the TLP baseline. */
std::unique_ptr<baselines::TlpModel>
trainTlp(const synth::Dataset& ds, const TrainConfig& tcfg,
         const std::string& tag);

/** Train (or load) the GNNHLS baseline. */
std::unique_ptr<baselines::GnnHlsModel>
trainGnnHls(const synth::Dataset& ds, const TrainConfig& tcfg,
            const std::string& tag);

/** Train (or load) the Tenset-MLP baseline. */
std::unique_ptr<baselines::TensetMlpModel>
trainTensetMlp(const synth::Dataset& ds, const TrainConfig& tcfg,
               const std::string& tag);

/** Ground-truth targets for a workload (profiled on canonical data). */
model::Targets groundTruth(const workloads::Workload& w);

/** Prediction closure: workload -> predicted value for a metric. */
using PredictFn =
    std::function<long(const workloads::Workload&, model::Metric)>;

/** Per-workload absolute percentage error against the profiler. */
std::vector<double> workloadErrors(const PredictFn& fn,
                                   const std::vector<workloads::Workload>& ws,
                                   model::Metric m);

/** PredictFn adapters for each model family. */
PredictFn predictOurs(const model::CostModel& m);
PredictFn predictTlp(const baselines::TlpModel& m);
PredictFn predictGnnHls(const baselines::GnnHlsModel& m);
PredictFn predictTensetMlp(const baselines::TensetMlpModel& m);

/**
 * Run DPO calibration for one workload over its input variants and return
 * the final-iteration error (Table 3 "Ours" cycles protocol). The model is
 * cloned internally so calibration on one workload does not leak into the
 * next (per-design calibration, as in the paper's per-application runs).
 */
double calibratedCyclesError(const model::CostModel& base,
                             const workloads::Workload& w, int iterations);

/** Stable hash of a dataset (for cache keys). */
uint64_t datasetKey(const synth::Dataset& ds);

} // namespace harness
} // namespace llmulator

#endif // LLMULATOR_HARNESS_HARNESS_H
