/**
 * @file
 * Real-world dataflow accelerator case study (paper Section 7.4): GEMM
 * loop-schedule variants standing in for TPU v1 (weight-stationary),
 * Eyeriss (input-stationary) and ShiDianNao (output-stationary).
 *
 * As in the paper, the variants are "synthetically compiled from [the]
 * PolyBench suite (Gemm workload), with their corresponding hardware
 * mappings adjusted accordingly": the loop order determines which operand
 * stays resident, and the unroll/parallel pragmas mirror each
 * architecture's spatial dimension.
 */

#include "workloads/workloads.h"

#include "dfir/builder.h"
#include "dfir/verify.h"
#include "synth/generators.h"
#include "util/common.h"
#include "util/rng.h"

namespace llmulator {
namespace workloads {

namespace {

using namespace dfir;

/**
 * GEMM with an explicit loop schedule. order is a permutation of
 * {"i","j","k"}; the innermost loop carries the spatial pragma.
 */
Workload
makeGemmVariant(const std::string& name,
                const std::vector<std::string>& order, int unroll,
                bool parallel, uint64_t seed)
{
    Operator op;
    op.name = "gemm";
    op.scalarParams = {"N"};
    op.tensors = {tensor("A", {p("N"), p("N")}),
                  tensor("B", {p("N"), p("N")}),
                  tensor("C", {p("N"), p("N")})};
    auto body = assign(
        "C", {v("i"), v("j")},
        badd(a("C", {v("i"), v("j")}),
             bmul(a("A", {v("i"), v("k")}), a("B", {v("k"), v("j")}))));
    StmtPtr nest = forLoop(order[2], c(0), p("N"), {body}, 1, unroll,
                           parallel);
    nest = forLoop(order[1], c(0), p("N"), {nest});
    nest = forLoop(order[0], c(0), p("N"), {nest});
    op.body = {nest};

    DataflowGraph g;
    g.name = name;
    g.ops = {op};
    g.calls = {{"gemm"}};

    Workload w;
    w.name = name;
    w.graph = std::move(g);
    dfir::VerifyResult vr = dfir::verify(w.graph);
    LLM_CHECK(vr.ok(), "workload '" << name << "' failed DFIR verification:\n"
                                    << vr.str());
    util::Rng rng(seed);
    w.canonicalData = synth::generateRuntimeData(w.graph, rng, 16);
    for (int i = 0; i < 6; ++i)
        w.variants.push_back(synth::generateRuntimeData(w.graph, rng, 16));
    return w;
}

} // namespace

std::vector<Workload>
accelerators()
{
    return {
        // TPU v1: weight-stationary — weights indexed by (k, j) held while
        // i streams; the systolic array parallelizes the output column.
        makeGemmVariant("TPU", {"k", "j", "i"}, 1, true, 201),
        // Eyeriss: input-stationary row-stationary flavour — inputs (i, k)
        // resident, j unrolled across the PE row.
        makeGemmVariant("Eyeriss", {"i", "k", "j"}, 4, false, 202),
        // ShiDianNao: output-stationary — each PE owns C[i][j]; k streams.
        makeGemmVariant("Shidiannao", {"i", "j", "k"}, 2, false, 203),
    };
}

} // namespace workloads
} // namespace llmulator
