/**
 * @file
 * The 14 "modern" workloads of paper Table 2: image-processing pipelines
 * (rows 1-9) and NLP models (rows 10-14).
 *
 * Each workload is assembled from compact operator templates (convolution,
 * depthwise/pointwise, normalization, attention-style GEMM, gating,
 * pooling, residual) to match the paper's per-row structure: operator
 * count and dynamic-parameter count. Counts are scaled by ~1/2 relative to
 * Table 2 (and CBAM's 52 dynamic scalars capped) so a workload fits the
 * reduced model context window; the *relative* ordering of size and
 * dynamism across rows is preserved, which is what the evaluation shapes
 * depend on. Image rows expose H/W size parameters, NLP rows expose
 * sequence-length parameters, matching the paper's input-modification
 * protocol (Section 7.1).
 */

#include "workloads/workloads.h"

#include "dfir/builder.h"
#include "dfir/verify.h"
#include "synth/generators.h"
#include "util/common.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace llmulator {
namespace workloads {

namespace {

using namespace dfir;

/** Operator template kinds used to assemble apps. */
enum class Tmpl
{
    Conv,      //!< dense 2-deep convolution-like nest
    Depthwise, //!< single-loop channel-wise multiply
    Pointwise, //!< 1x1 projection (gemm-like, 2-deep)
    Norm,      //!< normalization pass
    Relu,      //!< elementwise max(0, x)
    AttnScore, //!< q.k score accumulation (2-deep, mul-add)
    Gate,      //!< data-dependent branch (attention masks, GAN gates)
    Pool,      //!< strided reduction
    Residual   //!< elementwise add of two maps
};

/**
 * Instantiate one template. 'dynamic' selects whether the spatial bound is
 * a runtime parameter (dim_param) or a compile-time constant.
 */
Operator
makeOp(Tmpl t, int idx, bool dynamic, const std::string& dim_param,
       long fixed_n, util::Rng& rng)
{
    Operator op;
    ExprPtr n = dynamic ? p(dim_param) : c(fixed_n);
    if (dynamic)
        op.scalarParams = {dim_param};
    std::string x = util::format("t%d", idx);
    std::string y = util::format("t%d", idx + 1);
    std::string w = util::format("w%d", idx);

    switch (t) {
      case Tmpl::Conv: {
        op.name = util::format("conv%d", idx);
        long k = rng.uniformInt(3, 5);
        op.tensors = {tensor(x, {n, n}), tensor(w, {c(k)}),
                      tensor(y, {n, n})};
        auto s = assign(
            y, {v("i"), v("j")},
            badd(a(y, {v("i"), v("j")}),
                 bmul(a(x, {badd(v("i"), v("r")), v("j")}),
                      a(w, {v("r")}))));
        op.body = {forLoop("i", c(0), n,
                           {forLoop("j", c(0), n,
                                    {forLoop("r", c(0), c(k), {s})})})};
        break;
      }
      case Tmpl::Depthwise: {
        op.name = util::format("dwise%d", idx);
        op.tensors = {tensor(x, {n}), tensor(w, {n}), tensor(y, {n})};
        op.body = {forLoop("i", c(0), n,
                           {assign(y, {v("i")},
                                   bmul(a(x, {v("i")}), a(w, {v("i")})))})};
        break;
      }
      case Tmpl::Pointwise: {
        op.name = util::format("pwise%d", idx);
        op.tensors = {tensor(x, {n, c(8)}), tensor(w, {c(8), c(8)}),
                      tensor(y, {n, c(8)})};
        auto s = assign(y, {v("i"), v("j")},
                        badd(a(y, {v("i"), v("j")}),
                             bmul(a(x, {v("i"), v("k")}),
                                  a(w, {v("k"), v("j")}))));
        op.body = {forLoop("i", c(0), n,
                           {forLoop("j", c(0), c(8),
                                    {forLoop("k", c(0), c(8), {s})})})};
        break;
      }
      case Tmpl::Norm: {
        op.name = util::format("norm%d", idx);
        op.tensors = {tensor(x, {n}), tensor(y, {n})};
        op.body = {forLoop(
            "i", c(0), n,
            {assign(y, {v("i")},
                    bdiv(bsub(a(x, {v("i")}), c(4)), c(3)))})};
        break;
      }
      case Tmpl::Relu: {
        op.name = util::format("relu%d", idx);
        op.tensors = {tensor(x, {n}), tensor(y, {n})};
        op.body = {forLoop("i", c(0), n,
                           {assign(y, {v("i")},
                                   bmax(a(x, {v("i")}), c(0)))})};
        break;
      }
      case Tmpl::AttnScore: {
        op.name = util::format("attn%d", idx);
        op.tensors = {tensor(x, {n, c(8)}), tensor(y, {n, n})};
        auto s = assign(y, {v("i"), v("j")},
                        badd(a(y, {v("i"), v("j")}),
                             bmul(a(x, {v("i"), v("k")}),
                                  a(x, {v("j"), v("k")}))));
        op.body = {forLoop("i", c(0), n,
                           {forLoop("j", c(0), n,
                                    {forLoop("k", c(0), c(8), {s})})})};
        break;
      }
      case Tmpl::Gate: {
        op.name = util::format("gate%d", idx);
        op.tensors = {tensor(x, {n}), tensor(y, {n})};
        auto s = ifStmt(
            bgt(a(x, {v("i")}), c(rng.uniformInt(0, 10))),
            {assign(y, {v("i")},
                    bmul(a(x, {v("i")}), a(x, {v("i")})))},
            {assign(y, {v("i")}, c(0))});
        op.body = {forLoop("i", c(0), n, {s})};
        break;
      }
      case Tmpl::Pool: {
        op.name = util::format("pool%d", idx);
        op.tensors = {tensor(x, {n}), tensor(y, {n})};
        auto s = assign(y, {v("i")},
                        bmax(a(x, {bmul(v("i"), c(2))}),
                             a(x, {badd(bmul(v("i"), c(2)), c(1))})));
        op.body = {forLoop("i", c(0), bdiv(n, c(2)), {s})};
        break;
      }
      case Tmpl::Residual: {
        op.name = util::format("resid%d", idx);
        std::string z = util::format("t%d", idx > 0 ? idx - 1 : 0);
        op.tensors = {tensor(x, {n}), tensor(z, {n}), tensor(y, {n})};
        op.body = {forLoop("i", c(0), n,
                           {assign(y, {v("i")},
                                   badd(a(x, {v("i")}), a(z, {v("i")})))})};
        break;
      }
    }
    return op;
}

/** Row spec distilled from paper Table 2 (scaled; see file header). */
struct AppSpec
{
    const char* name;
    int ops;       //!< operator count (paper count / ~2, min 3, max 10)
    int dynOps;    //!< operators with runtime-parameter bounds
    bool nlp;      //!< NLP row (sequence-length parameter "L")
    long baseSize; //!< canonical spatial size
};

const AppSpec kApps[14] = {
    {"ImageNorm+CNN", 4, 1, false, 16},      // Tab. 2-1 (8 ops, 2 dyn)
    {"RB+DSC", 3, 2, false, 16},             // Tab. 2-2 (6, 3)
    {"SPP+Fusion", 4, 1, false, 16},         // Tab. 2-3 (8, 2)
    {"CBAMAttention", 6, 4, false, 12},      // Tab. 2-4 (12, 52 capped)
    {"Anchor+RoIAlign", 3, 2, false, 16},    // Tab. 2-5 (5, 4)
    {"GAN+SuperRes", 7, 1, false, 14},       // Tab. 2-6 (13, 2)
    {"Dense+SkipConn", 4, 2, false, 18},     // Tab. 2-7 (8, 3)
    {"DilatedConv+Aggre", 3, 1, false, 18},  // Tab. 2-8 (6, 2)
    {"BEVFormer", 3, 1, false, 16},          // Tab. 2-9 (5, 2)
    {"Bert-base", 6, 1, true, 14},           // Tab. 2-10 (12, 2)
    {"Albert", 6, 2, true, 14},              // Tab. 2-11 (13, 4)
    {"T5-base", 10, 1, true, 12},            // Tab. 2-12 (21, 1)
    {"Roberta", 5, 1, true, 14},             // Tab. 2-13 (10, 2)
    {"LLaMA", 4, 1, true, 16},               // Tab. 2-14 (8, 1)
};

Workload
makeApp(int row)
{
    const AppSpec& spec = kApps[row];
    util::Rng rng(0x700 + row);

    DataflowGraph g;
    g.name = spec.name;

    // Template pools differ by domain: image rows lean on conv/pool,
    // NLP rows on attention/pointwise.
    std::vector<Tmpl> pool =
        spec.nlp ? std::vector<Tmpl>{Tmpl::AttnScore, Tmpl::Pointwise,
                                     Tmpl::Norm, Tmpl::Relu, Tmpl::Gate,
                                     Tmpl::Residual}
                 : std::vector<Tmpl>{Tmpl::Conv, Tmpl::Depthwise,
                                     Tmpl::Pointwise, Tmpl::Norm,
                                     Tmpl::Relu, Tmpl::Gate, Tmpl::Pool,
                                     Tmpl::Residual};
    const std::string dim = spec.nlp ? "L" : "H";

    for (int i = 0; i < spec.ops; ++i) {
        bool dynamic = i < spec.dynOps;
        Tmpl t = dynamic && i == 0 ? Tmpl::Gate : pool[rng.index(pool.size())];
        // Each dynamic operator gets its own size parameter (H, H1, H2, ...)
        // so the per-row dynamic-parameter count tracks Table 2.
        std::string dim_i =
            i == 0 ? dim : dim + std::to_string(i);
        g.ops.push_back(
            makeOp(t, i, dynamic, dim_i, spec.baseSize, rng));
        g.calls.push_back({g.ops.back().name});
    }

    Workload w;
    w.name = spec.name;
    w.graph = std::move(g);
    dfir::VerifyResult vr = dfir::verify(w.graph);
    LLM_CHECK(vr.ok(), "workload '" << spec.name
                                    << "' failed DFIR verification:\n"
                                    << vr.str());
    util::Rng drng(0x900 + row);
    w.canonicalData =
        synth::generateRuntimeData(w.graph, drng, spec.baseSize);
    // Input-size modification protocol: image rows vary H, NLP rows vary L.
    for (int i = 0; i < 6; ++i)
        w.variants.push_back(
            synth::generateRuntimeData(w.graph, drng, spec.baseSize));
    return w;
}

} // namespace

std::vector<Workload>
modern()
{
    std::vector<Workload> out;
    for (int row = 0; row < 14; ++row)
        out.push_back(makeApp(row));
    return out;
}

} // namespace workloads
} // namespace llmulator
