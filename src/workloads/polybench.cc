/**
 * @file
 * PolyBench kernels in the dataflow IR.
 *
 * Each kernel preserves the loop/dependence structure of its PolyBench-C
 * counterpart (sweep directions, loop-carried accumulations, stencil
 * shapes) at reduced statement count so a workload fits the model context
 * window. Problem sizes are dynamic parameters ("N", "T"), making every
 * kernel input-adaptive (Class II) — the property Tables 3 and 11 exercise.
 */

#include "workloads/workloads.h"

#include "dfir/builder.h"
#include "dfir/verify.h"
#include "synth/generators.h"
#include "util/common.h"
#include "util/rng.h"

namespace llmulator {
namespace workloads {

namespace {

using namespace dfir;

/** Finish a workload: canonical data + size variants at ±50%. */
Workload
finish(const std::string& name, DataflowGraph g, long base_n,
       uint64_t seed)
{
    Workload w;
    w.name = name;
    w.graph = std::move(g);
    dfir::VerifyResult vr = dfir::verify(w.graph);
    LLM_CHECK(vr.ok(), "workload '" << name << "' failed DFIR verification:\n"
                                    << vr.str());
    util::Rng rng(seed);
    w.canonicalData = synth::generateRuntimeData(w.graph, rng, base_n);
    for (int i = 0; i < 6; ++i)
        w.variants.push_back(
            synth::generateRuntimeData(w.graph, rng, base_n));
    return w;
}

DataflowGraph
graphOf(std::vector<Operator> ops, const std::string& name)
{
    DataflowGraph g;
    g.name = name;
    for (const auto& op : ops)
        g.calls.push_back({op.name});
    g.ops = std::move(ops);
    return g;
}

/** adi: alternating-direction implicit — row sweep then column sweep. */
Workload
makeAdi()
{
    Operator op;
    op.name = "adi";
    op.scalarParams = {"N"};
    op.tensors = {tensor("u", {p("N"), p("N")}),
                  tensor("vv", {p("N"), p("N")})};
    auto row = assign(
        "vv", {v("i"), v("j")},
        badd(a("u", {v("i"), v("j")}),
             bmul(a("u", {v("i"), bsub(v("j"), c(1))}), c(2))));
    auto col = assign(
        "u", {v("i"), v("j")},
        badd(a("vv", {v("i"), v("j")}),
             bmul(a("vv", {bsub(v("i"), c(1)), v("j")}), c(2))));
    op.body = {
        forLoop("i", c(0), p("N"),
                {forLoop("j", c(1), p("N"), {row})}),
        forLoop("i", c(1), p("N"),
                {forLoop("j", c(0), p("N"), {col})}),
    };
    return finish("adi", graphOf({op}, "adi"), 20, 101);
}

/** atax: y = A^T (A x). */
Workload
makeAtax()
{
    Operator op;
    op.name = "atax";
    op.scalarParams = {"N"};
    op.tensors = {tensor("A", {p("N"), p("N")}), tensor("x", {p("N")}),
                  tensor("tmp", {p("N")}), tensor("y", {p("N")})};
    auto s1 = assign("tmp", {v("i")},
                     badd(a("tmp", {v("i")}),
                          bmul(a("A", {v("i"), v("j")}), a("x", {v("j")}))));
    auto s2 = assign("y", {v("j")},
                     badd(a("y", {v("j")}),
                          bmul(a("A", {v("i"), v("j")}),
                               a("tmp", {v("i")}))));
    op.body = {
        forLoop("i", c(0), p("N"), {forLoop("j", c(0), p("N"), {s1})}),
        forLoop("i", c(0), p("N"), {forLoop("j", c(0), p("N"), {s2})}),
    };
    return finish("atax", graphOf({op}, "atax"), 20, 102);
}

/** bicg: s = A^T r ; q = A p. */
Workload
makeBicg()
{
    Operator op;
    op.name = "bicg";
    op.scalarParams = {"N"};
    op.tensors = {tensor("A", {p("N"), p("N")}), tensor("r", {p("N")}),
                  tensor("s", {p("N")}), tensor("q", {p("N")}),
                  tensor("pp", {p("N")})};
    auto s1 = assign("s", {v("j")},
                     badd(a("s", {v("j")}),
                          bmul(a("r", {v("i")}),
                               a("A", {v("i"), v("j")}))));
    auto s2 = assign("q", {v("i")},
                     badd(a("q", {v("i")}),
                          bmul(a("A", {v("i"), v("j")}),
                               a("pp", {v("j")}))));
    op.body = {forLoop("i", c(0), p("N"),
                       {forLoop("j", c(0), p("N"), {s1, s2})})};
    return finish("bicg", graphOf({op}, "bicg"), 20, 103);
}

/** correlation: column means then correlation accumulation. */
Workload
makeCorrelation()
{
    Operator op;
    op.name = "correlation";
    op.scalarParams = {"N"};
    op.tensors = {tensor("D", {p("N"), p("N")}), tensor("mean", {p("N")}),
                  tensor("corr", {p("N"), p("N")})};
    auto s1 = assign("mean", {v("j")},
                     badd(a("mean", {v("j")}), a("D", {v("i"), v("j")})));
    auto s2 = assign(
        "corr", {v("i"), v("j")},
        badd(a("corr", {v("i"), v("j")}),
             bmul(bsub(a("D", {v("k"), v("i")}), a("mean", {v("i")})),
                  bsub(a("D", {v("k"), v("j")}), a("mean", {v("j")})))));
    op.body = {
        forLoop("i", c(0), p("N"), {forLoop("j", c(0), p("N"), {s1})}),
        forLoop("i", c(0), p("N"),
                {forLoop("j", c(0), p("N"),
                         {forLoop("k", c(0), p("N"), {s2})})}),
    };
    return finish("correlation", graphOf({op}, "correlation"), 12, 104);
}

/** covariance: like correlation without normalization. */
Workload
makeCovariance()
{
    Operator op;
    op.name = "covariance";
    op.scalarParams = {"N"};
    op.tensors = {tensor("D", {p("N"), p("N")}),
                  tensor("cov", {p("N"), p("N")})};
    auto s = assign(
        "cov", {v("i"), v("j")},
        badd(a("cov", {v("i"), v("j")}),
             bmul(a("D", {v("k"), v("i")}), a("D", {v("k"), v("j")}))));
    op.body = {forLoop("i", c(0), p("N"),
                       {forLoop("j", c(0), p("N"),
                                {forLoop("k", c(0), p("N"), {s})})})};
    return finish("covariance", graphOf({op}, "covariance"), 12, 105);
}

/** deriche: recursive 1-D filters (loop-carried, unpipelineable sweeps). */
Workload
makeDeriche()
{
    Operator op;
    op.name = "deriche";
    op.scalarParams = {"N"};
    op.tensors = {tensor("img", {p("N")}), tensor("y1", {p("N")}),
                  tensor("y2", {p("N")})};
    auto fwd = assign("y1", {v("i")},
                      badd(bmul(a("img", {v("i")}), c(2)),
                           bmul(a("y1", {bsub(v("i"), c(1))}), c(3))));
    auto bwd = assign("y2", {v("i")},
                      badd(a("y1", {v("i")}),
                           bmul(a("y2", {badd(v("i"), c(1))}), c(3))));
    op.body = {
        forLoop("i", c(1), p("N"), {fwd}),
        forLoop("i", c(0), bsub(p("N"), c(1)), {bwd}),
    };
    return finish("deriche", graphOf({op}, "deriche"), 48, 106);
}

/** fdtd-2d: three coupled field updates. */
Workload
makeFdtd2d()
{
    Operator op;
    op.name = "fdtd2d";
    op.scalarParams = {"N"};
    op.tensors = {tensor("ex", {p("N"), p("N")}),
                  tensor("ey", {p("N"), p("N")}),
                  tensor("hz", {p("N"), p("N")})};
    auto s1 = assign("ey", {v("i"), v("j")},
                     bsub(a("ey", {v("i"), v("j")}),
                          bmul(bsub(a("hz", {v("i"), v("j")}),
                                    a("hz", {bsub(v("i"), c(1)), v("j")})),
                               c(2))));
    auto s2 = assign("ex", {v("i"), v("j")},
                     bsub(a("ex", {v("i"), v("j")}),
                          bmul(bsub(a("hz", {v("i"), v("j")}),
                                    a("hz", {v("i"), bsub(v("j"), c(1))})),
                               c(2))));
    auto s3 = assign(
        "hz", {v("i"), v("j")},
        bsub(a("hz", {v("i"), v("j")}),
             badd(bsub(a("ex", {v("i"), badd(v("j"), c(1))}),
                       a("ex", {v("i"), v("j")})),
                  bsub(a("ey", {badd(v("i"), c(1)), v("j")}),
                       a("ey", {v("i"), v("j")})))));
    op.body = {forLoop("i", c(1), bsub(p("N"), c(1)),
                       {forLoop("j", c(1), bsub(p("N"), c(1)),
                                {s1, s2, s3})})};
    return finish("fdtd-2d", graphOf({op}, "fdtd2d"), 20, 107);
}

/** heat-3d: 3-deep stencil. */
Workload
makeHeat3d()
{
    Operator op;
    op.name = "heat3d";
    op.scalarParams = {"N"};
    op.tensors = {tensor("A", {p("N"), p("N"), p("N")}),
                  tensor("B", {p("N"), p("N"), p("N")})};
    auto s = assign(
        "B", {v("i"), v("j"), v("k")},
        badd(a("A", {v("i"), v("j"), v("k")}),
             bmul(badd(a("A", {badd(v("i"), c(1)), v("j"), v("k")}),
                       a("A", {v("i"), badd(v("j"), c(1)), v("k")})),
                  c(2))));
    op.body = {forLoop(
        "i", c(0), bsub(p("N"), c(1)),
        {forLoop("j", c(0), bsub(p("N"), c(1)),
                 {forLoop("k", c(0), bsub(p("N"), c(1)), {s})})})};
    return finish("heat-3d", graphOf({op}, "heat3d"), 10, 108);
}

/** jacobi-2d: 5-point stencil ping-pong. */
Workload
makeJacobi2d()
{
    Operator op;
    op.name = "jacobi2d";
    op.scalarParams = {"N"};
    op.tensors = {tensor("A", {p("N"), p("N")}),
                  tensor("B", {p("N"), p("N")})};
    auto s1 = assign(
        "B", {v("i"), v("j")},
        bmul(badd(badd(a("A", {v("i"), v("j")}),
                       a("A", {v("i"), bsub(v("j"), c(1))})),
                  badd(a("A", {bsub(v("i"), c(1)), v("j")}),
                       a("A", {badd(v("i"), c(1)), v("j")}))),
             c(2)));
    auto s2 = assign("A", {v("i"), v("j")}, a("B", {v("i"), v("j")}));
    op.body = {
        forLoop("i", c(1), bsub(p("N"), c(1)),
                {forLoop("j", c(1), bsub(p("N"), c(1)), {s1})}),
        forLoop("i", c(1), bsub(p("N"), c(1)),
                {forLoop("j", c(1), bsub(p("N"), c(1)), {s2})}),
    };
    return finish("jacobi-2d", graphOf({op}, "jacobi2d"), 20, 109);
}

/** seidel-2d: in-place stencil (loop-carried dependence). */
Workload
makeSeidel2d()
{
    Operator op;
    op.name = "seidel2d";
    op.scalarParams = {"N"};
    op.tensors = {tensor("A", {p("N"), p("N")})};
    auto s = assign(
        "A", {v("i"), v("j")},
        bdiv(badd(badd(a("A", {bsub(v("i"), c(1)), v("j")}),
                       a("A", {v("i"), bsub(v("j"), c(1))})),
                  badd(a("A", {v("i"), v("j")}),
                       a("A", {badd(v("i"), c(1)), v("j")}))),
             c(4)));
    op.body = {forLoop("i", c(1), bsub(p("N"), c(1)),
                       {forLoop("j", c(1), bsub(p("N"), c(1)), {s})})};
    return finish("seidel-2d", graphOf({op}, "seidel2d"), 20, 110);
}

} // namespace

std::vector<Workload>
polybench()
{
    return {makeAdi(),        makeAtax(),     makeBicg(),
            makeCorrelation(), makeCovariance(), makeDeriche(),
            makeFdtd2d(),     makeHeat3d(),   makeJacobi2d(),
            makeSeidel2d()};
}

} // namespace workloads
} // namespace llmulator
