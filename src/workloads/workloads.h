#ifndef LLMULATOR_WORKLOADS_WORKLOADS_H
#define LLMULATOR_WORKLOADS_WORKLOADS_H

/**
 * @file
 * Evaluation workloads (paper Section 7.1):
 *  - the 10 PolyBench kernels used throughout Tables 3/4/11 (adi, atax,
 *    bicg, correlation, covariance, deriche, fdtd-2d, heat-3d, jacobi-2d,
 *    seidel-2d), expressed in the dataflow IR with dynamic size
 *    parameters so control flow is input-adaptive;
 *  - the 14 "modern" workloads of Table 2 (image-processing tasks 1-9 and
 *    NLP tasks 10-14), assembled from operator templates to match each
 *    row's operator count and dynamic-parameter count (scaled to the
 *    reduced context window, see DESIGN.md);
 *  - the TPU / Eyeriss / ShiDianNao case-study variants of Section 7.4:
 *    GEMM loop-schedule rewrites (weight-/input-/output-stationary).
 *
 * Every workload carries canonical runtime data plus input variants
 * (image-size / text-length modifications, paper Section 7.1) for the
 * dynamic-calibration experiments.
 */

#include <string>
#include <vector>

#include "dfir/ir.h"

namespace llmulator {
namespace workloads {

/** A named evaluation workload with runtime-input variants. */
struct Workload
{
    std::string name;
    dfir::DataflowGraph graph;
    dfir::RuntimeData canonicalData;
    std::vector<dfir::RuntimeData> variants;
};

/** The 10 PolyBench kernels. */
std::vector<Workload> polybench();

/** The 14 Table-2 modern workloads (index 0 = "Tab. 2-1"). */
std::vector<Workload> modern();

/** TPU v1 / Eyeriss / ShiDianNao GEMM schedule variants. */
std::vector<Workload> accelerators();

} // namespace workloads
} // namespace llmulator

#endif // LLMULATOR_WORKLOADS_WORKLOADS_H
