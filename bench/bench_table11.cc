/**
 * @file
 * Table 11 reproduction: dataflow-application MAPE on PolyBench compiled
 * for a programmable dataflow accelerator (the paper's TPU/MLIRSynth
 * deployment), with LLMulator dynamically calibrated from execution
 * profiles and compared against the profile-assisted TLP and Tenset-MLP
 * baselines.
 *
 * The deployment is modeled by re-parameterizing each kernel with the TPU
 * case-study hardware mapping (fast scratchpad memories, wider ports) and
 * calibrating on profiles of the input variants, mirroring "dynamically
 * calibrate LLMulator using input profiles collected during TPU runs".
 *
 * Expected shape (paper): Ours < Tenset and Ours < TLP on average
 * (13.6% vs 24.4% / 20.4% there).
 */

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"

using namespace llmulator;
using model::Metric;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 11: dataflow application MAPE on PolyBench "
                "(TPU-mapped, profile-calibrated)\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    harness::TrainConfig tcfg = harness::defaultTrainConfig();
    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        tcfg, "main_ours");
    auto tlp = harness::trainTlp(ds, tcfg, "main");
    auto tenset = harness::trainTensetMlp(ds, tcfg, "main");

    // TPU-style deployment: fast on-chip memories, wide read ports.
    auto poly = workloads::polybench();
    for (auto& w : poly) {
        w.graph.params.memReadDelay = 2;
        w.graph.params.memWriteDelay = 2;
        w.graph.params.readPorts = 4;
        w.graph.params.writePorts = 2;
    }

    auto fn_tlp = harness::predictTlp(*tlp);
    auto fn_tenset = harness::predictTensetMlp(*tenset);
    auto e_tlp = harness::workloadErrors(fn_tlp, poly, Metric::Cycles);
    auto e_tenset =
        harness::workloadErrors(fn_tenset, poly, Metric::Cycles);

    eval::Table t({"Kernel", "Ours", "Tenset", "TLP"});
    std::vector<double> e_ours;
    for (size_t i = 0; i < poly.size(); ++i) {
        // 8 calibration iterations: profiles are plentiful on real runs.
        e_ours.push_back(
            harness::calibratedCyclesError(*ours, poly[i], 8));
        t.addRow({poly[i].name, eval::pct(e_ours.back()),
                  eval::pct(e_tenset[i]), eval::pct(e_tlp[i])});
    }
    t.addRow({"average", eval::pct(eval::mean(e_ours)),
              eval::pct(eval::mean(e_tenset)),
              eval::pct(eval::mean(e_tlp))});
    t.print();
    std::printf("\n[shape] Ours %.1f%% vs Tenset %.1f%% vs TLP %.1f%% "
                "(paper: 13.6%% / 24.4%% / 20.4%%)\n",
                eval::mean(e_ours) * 100, eval::mean(e_tenset) * 100,
                eval::mean(e_tlp) * 100);
    bench::csv("table11", "mape_ours", eval::mean(e_ours));
    bench::csv("table11", "mape_tenset", eval::mean(e_tenset));
    bench::csv("table11", "mape_tlp", eval::mean(e_tlp));
    return 0;
}
