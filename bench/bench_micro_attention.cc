/**
 * @file
 * Microbenchmark (google-benchmark): the Section 5.3 cached inference
 * path vs the full forward, at the kernel level. Complements Tables 5/9
 * (which time end-to-end predictions) with steady-state measurements of
 * the encoder forward alone.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <ostream>
#include <vector>

#include "bench_common.h"
#include "harness/harness.h"
#include "model/fast_encoder.h"
#include "synth/generators.h"

using namespace llmulator;

namespace {

/** Shared fixture: one trained model + one workload, built lazily. */
struct Fixture
{
    std::unique_ptr<model::CostModel> ours;
    model::EncodedProgram prime, probe;

    static Fixture&
    get()
    {
        static Fixture f = [] {
            Fixture fx;
            synth::Dataset ds =
                harness::defaultDataset(harness::defaultSynthConfig());
            fx.ours = harness::trainCostModel(
                harness::defaultOursConfig(), ds,
                harness::defaultTrainConfig(), "main_ours");
            auto modern = workloads::modern();
            const auto& w = modern[3]; // CBAM: many Class II operators
            fx.prime = fx.ours->encode(w.graph, &w.canonicalData);
            fx.probe = fx.ours->encode(w.graph, &w.variants[0]);
            return fx;
        }();
        return f;
    }
};

void
BM_FullForward(benchmark::State& state)
{
    Fixture& f = Fixture::get();
    model::InferenceSession session(*f.ours);
    for (auto _ : state) {
        auto pred =
            session.predict(f.probe, model::Metric::Cycles, false);
        benchmark::DoNotOptimize(pred.value);
    }
}

void
BM_CachedForward(benchmark::State& state)
{
    Fixture& f = Fixture::get();
    model::InferenceSession session(*f.ours);
    session.predict(f.prime, model::Metric::Cycles, true); // prime cache
    for (auto _ : state) {
        auto pred = session.predict(f.probe, model::Metric::Cycles, true);
        benchmark::DoNotOptimize(pred.value);
    }
}

void
BM_AutogradForward(benchmark::State& state)
{
    // The training-path forward (tape construction included), for context.
    Fixture& f = Fixture::get();
    for (auto _ : state) {
        auto pooled = f.ours->pooledForward(f.probe);
        benchmark::DoNotOptimize(pooled->value[0]);
    }
}

BENCHMARK(BM_FullForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AutogradForward)->Unit(benchmark::kMillisecond);

/** Console output plus a scrapeable `name,metric,value` CSV echo. */
class CsvEchoReporter : public benchmark::ConsoleReporter
{
public:
    // OO_Tabular without OO_Color: BENCHMARK_MAIN would have disabled
    // color for non-TTY output; default-constructing keeps it on and
    // leaks ANSI codes into redirected CI logs.
    CsvEchoReporter() : ConsoleReporter(OO_Tabular) {}

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        // The table goes through buffered std::cout while csv() uses
        // stdout directly; flush so the lines cannot interleave.
        GetOutputStream().flush();
        for (const auto& run : runs)
            bench::csv("micro_attention",
                       (run.benchmark_name() + "_ms").c_str(),
                       run.GetAdjustedRealTime());
    }
};

} // namespace

int
main(int argc, char** argv)
{
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    // Strip --quick (it switches the harness into smoke mode and caps
    // the measurement time) before google-benchmark sees the arguments.
    std::vector<char*> args;
    bool quick = false;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
            harness::forceSmokeMode(true);
        } else {
            args.push_back(argv[i]);
        }
    }
    static char min_time[] = "--benchmark_min_time=0.05";
    if (quick)
        args.push_back(min_time);
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    CsvEchoReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
