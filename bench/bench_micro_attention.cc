/**
 * @file
 * Microbenchmark (google-benchmark): the Section 5.3 cached inference
 * path vs the full forward, at the kernel level. Complements Tables 5/9
 * (which time end-to-end predictions) with steady-state measurements of
 * the encoder forward alone.
 */

#include <benchmark/benchmark.h>

#include "harness/harness.h"
#include "model/fast_encoder.h"
#include "synth/generators.h"

using namespace llmulator;

namespace {

/** Shared fixture: one trained model + one workload, built lazily. */
struct Fixture
{
    std::unique_ptr<model::CostModel> ours;
    model::EncodedProgram prime, probe;

    static Fixture&
    get()
    {
        static Fixture f = [] {
            Fixture fx;
            synth::Dataset ds =
                harness::defaultDataset(harness::defaultSynthConfig());
            fx.ours = harness::trainCostModel(
                harness::defaultOursConfig(), ds,
                harness::defaultTrainConfig(), "main_ours");
            auto modern = workloads::modern();
            const auto& w = modern[3]; // CBAM: many Class II operators
            fx.prime = fx.ours->encode(w.graph, &w.canonicalData);
            fx.probe = fx.ours->encode(w.graph, &w.variants[0]);
            return fx;
        }();
        return f;
    }
};

void
BM_FullForward(benchmark::State& state)
{
    Fixture& f = Fixture::get();
    model::InferenceSession session(*f.ours);
    for (auto _ : state) {
        auto pred =
            session.predict(f.probe, model::Metric::Cycles, false);
        benchmark::DoNotOptimize(pred.value);
    }
}

void
BM_CachedForward(benchmark::State& state)
{
    Fixture& f = Fixture::get();
    model::InferenceSession session(*f.ours);
    session.predict(f.prime, model::Metric::Cycles, true); // prime cache
    for (auto _ : state) {
        auto pred = session.predict(f.probe, model::Metric::Cycles, true);
        benchmark::DoNotOptimize(pred.value);
    }
}

void
BM_AutogradForward(benchmark::State& state)
{
    // The training-path forward (tape construction included), for context.
    Fixture& f = Fixture::get();
    for (auto _ : state) {
        auto pooled = f.ours->pooledForward(f.probe);
        benchmark::DoNotOptimize(pooled->value[0]);
    }
}

BENCHMARK(BM_FullForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AutogradForward)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
