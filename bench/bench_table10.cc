/**
 * @file
 * Table 10 reproduction: cycles MAPE at different base-model scales.
 * The paper sweeps Qwen2.5-0.5B / LLaMA-3.2-1B / LLaMA-3.1-8B; this repo
 * sweeps the Tiny / Small / Base presets (DESIGN.md section 4) under
 * identical training data and schedule.
 *
 * Expected shape (paper): larger models give lower average MAPE
 * (22.9% / 16.4% / 15.3% there).
 */

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"

using namespace llmulator;
using model::Metric;
using model::ModelScale;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 10: cycles MAPE vs base model scale on Table-2 "
                "workloads\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    harness::TrainConfig tcfg = harness::defaultTrainConfig();

    struct Row
    {
        const char* name;
        ModelScale scale;
        const char* tag;
    };
    std::vector<Row> rows = {{"Tiny (0.5B-class)", ModelScale::Tiny,
                              "t10_tiny"},
                             {"Small (1B-class)", ModelScale::Small,
                              "t10_small"},
                             {"Base (8B-class)", ModelScale::Base,
                              "t10_base"}};

    auto modern = workloads::modern();
    eval::Table t({"Scale", "Params", "avg cycles MAPE"});
    std::vector<double> avgs;
    for (const auto& row : rows) {
        model::CostModelConfig cfg = model::configForScale(row.scale);
        cfg.enc.maxSeq = harness::defaultOursConfig().enc.maxSeq;
        auto m = harness::trainCostModel(cfg, ds, tcfg, row.tag);
        // Evaluate with the same 5-iteration DPO protocol as Table 3.
        std::vector<double> errs;
        for (const auto& w : modern)
            errs.push_back(harness::calibratedCyclesError(*m, w, 5));
        double avg = eval::mean(errs);
        avgs.push_back(avg);
        t.addRow({row.name, std::to_string(m->parameterCount()),
                  eval::pct(avg)});
    }
    t.print();
    std::printf("\n[shape] MAPE by scale: %.1f%% / %.1f%% / %.1f%% "
                "(paper: 22.9%% / 16.4%% / 15.3%%; larger is better)\n",
                avgs[0] * 100, avgs[1] * 100, avgs[2] * 100);
    bench::csv("table10", "mape_tiny", avgs[0]);
    bench::csv("table10", "mape_small", avgs[1]);
    bench::csv("table10", "mape_base", avgs[2]);
    return 0;
}
