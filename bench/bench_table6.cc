/**
 * @file
 * Table 6 reproduction: correlation analysis between prediction
 * confidence (final-digit logit probability, Section 7.1) and squared
 * error for flip-flop estimates on randomly sampled workloads.
 *
 * Expected shape (paper): negative Pearson correlation (-0.44 there) —
 * lower confidence predicts higher error, the interpretability claim of
 * output numerical modeling.
 */

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"
#include "sim/profiler.h"
#include "synth/generators.h"
#include "util/string_util.h"

using namespace llmulator;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 6: confidence (final logit) vs MSE for FF "
                "estimates on randomly sampled workloads\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        harness::defaultTrainConfig(),
                                        "main_ours");

    // Freshly sampled programs (seed differs from every training stream).
    // Note on units: the paper's Table 6 samples all have tiny FF counts
    // (0-44), so its raw MSE behaves like a relative error. Our substrate
    // produces FF targets across orders of magnitude, so the correlation
    // is computed against squared *relative* error (raw-MSE Pearson is
    // also reported; it is dominated by the largest-magnitude samples).
    // The sample pool spans the model's competence range: half are
    // programs the model has trained on (high confidence, low error
    // expected), half are freshly generated (low confidence, higher
    // error) — the spread the confidence indicator must track.
    util::Rng rng(0xC0FFEE);
    const int n = 24;
    std::vector<dfir::DataflowGraph> pool;
    for (int i = 0; i < n / 2; ++i)
        pool.push_back(ds.samples[rng.index(ds.size())].graph);
    for (int i = n / 2; i < n; ++i)
        pool.push_back(synth::generateDataflowProgram(rng));

    std::vector<double> conf, sqrel, sqabs;
    eval::Table t({"Sample", "Confi", "Pred", "Real", "SqRelErr"});
    for (int i = 0; i < n; ++i) {
        const auto& g = pool[i];
        long truth = synth::targetsFromProfile(
            sim::profileStatic(g)).flipFlops;
        auto ep = ours->encode(g);
        auto pred = ours->predict(ep, model::Metric::FlipFlops);
        // Confidence over *significant* digits (geometric mean from the
        // first nonzero digit): the paper's samples are 1-2 digit values
        // where the final logit IS the significant digit; at width 8 the
        // leading zeros are trivially confident and would mask the
        // signal.
        size_t first = 0;
        while (first + 1 < pred.digits.size() && pred.digits[first] == 0)
            ++first;
        double logp = 0;
        for (size_t j = first; j < pred.digits.size(); ++j)
            logp += std::log(std::max(pred.digitProbs[j], 1e-12));
        double c = std::exp(logp /
                            static_cast<double>(pred.digits.size() - first));
        double rel = eval::absPctError(pred.value, truth);
        conf.push_back(c);
        sqrel.push_back(rel * rel);
        double d = double(pred.value) - double(truth);
        sqabs.push_back(d * d);
        t.addRow({std::to_string(i + 1), util::format("%.2f", c),
                  std::to_string(pred.value), std::to_string(truth),
                  util::format("%.3f", rel * rel)});
    }
    t.print();

    double r = eval::pearson(conf, sqrel);
    double r_abs = eval::pearson(conf, sqabs);
    std::printf("\n(raw-MSE Pearson, magnitude-dominated: %.2f)\n",
                r_abs);
    std::printf("[shape] Pearson(confidence, squared relative error) = "
                "%.2f (paper: -0.44, negative). NOTE: the negative sign "
                "does NOT reproduce at this scale — the from-scratch "
                "~100k-parameter policy is miscalibrated (confidently "
                "wrong on out-of-family magnitudes), where the paper's "
                "pretrained 1B model is not. Recorded as a deviation in "
                "EXPERIMENTS.md.\n", r);
    bench::csv("table6", "pearson_conf_sqrelerr", r);
    bench::csv("table6", "pearson_conf_sqabserr", r_abs);
    return 0;
}
