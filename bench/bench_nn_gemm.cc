/**
 * @file
 * GFLOP/s microbenchmark of the three raw GEMM kernels behind the
 * nn::Backend seam, swept over both registered backends and the shapes
 * the cost-model stack actually runs:
 *
 *  - pooled [B*maxSeq, dim] x [dim, dim] Q/K/V/out projections
 *    (dim 48 at batch 8, plus the [64,256]x[256,256] class from the
 *    acceptance contract),
 *  - attention scores [seq, headDim] x [headDim, seq] at headDim 12,
 *  - the FFN pair [tokens, 48] x [48, 128] and [tokens, 128] x
 *    [128, 48].
 *
 * CSV rows: nn_gemm,<variant>_m<m>_k<k>_n<n>_<backend>_gflops,<v> plus
 * a `_speedup` row (vector over scalar) per variant/shape. Quick mode
 * shortens the measured window, not the shape list.
 */

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/harness.h"
#include "nn/backend.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace llmulator;
using Clock = std::chrono::steady_clock;

struct Shape
{
    int m, k, n;
};

const Shape kShapes[] = {
    {64, 256, 256},  // acceptance-contract class
    {1536, 48, 48},  // pooled projections, batch 8 x maxSeq 192
    {192, 12, 192},  // attention scores, one sequence per head
    {192, 48, 128},  // FFN expand
    {192, 128, 48},  // FFN contract
};

std::vector<float>
randVec(size_t n, util::Rng& rng)
{
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.normal(0.0, 1.0));
    return v;
}

enum class Variant { Accum, AccumBt, AccumAt };

const char*
variantName(Variant v)
{
    switch (v) {
      case Variant::Accum: return "accum";
      case Variant::AccumBt: return "accum_bt";
      case Variant::AccumAt: return "accum_at";
    }
    return "?";
}

/** Run one (kernel, shape) measurement; returns GFLOP/s. */
double
measure(const nn::Backend& be, Variant v, const Shape& s, double seconds)
{
    util::Rng rng(1234);
    auto a = randVec(size_t(s.m) * s.k, rng);
    auto b = randVec(size_t(s.k) * s.n, rng);
    auto dc = randVec(size_t(s.m) * s.n, rng);
    // The accumulators are re-zeroed between reps so values cannot
    // drift to inf across thousands of accumulating calls; only the
    // kernel call itself is timed, so the memset does not compress the
    // reported ratio on low-arithmetic-intensity shapes.
    std::vector<float> out;
    auto runOnce = [&]() {
        Clock::time_point t0, t1;
        switch (v) {
          case Variant::Accum:
            out.assign(size_t(s.m) * s.n, 0.f);
            t0 = Clock::now();
            be.gemmAccum(a.data(), b.data(), out.data(), s.m, s.k, s.n);
            t1 = Clock::now();
            break;
          case Variant::AccumBt:
            out.assign(size_t(s.m) * s.k, 0.f);
            t0 = Clock::now();
            be.gemmAccumBt(dc.data(), b.data(), out.data(), s.m, s.k,
                           s.n);
            t1 = Clock::now();
            break;
          case Variant::AccumAt:
            out.assign(size_t(s.k) * s.n, 0.f);
            t0 = Clock::now();
            be.gemmAccumAt(a.data(), dc.data(), out.data(), s.m, s.k,
                           s.n);
            t1 = Clock::now();
            break;
        }
        return std::chrono::duration<double>(t1 - t0).count();
    };
    runOnce(); // warm-up: faults the buffers, primes the clone dispatch
    double flops = 2.0 * s.m * s.k * s.n;
    long reps = 0;
    double in_kernel = 0.0;
    do {
        in_kernel += runOnce();
        ++reps;
    } while (in_kernel < seconds);
    return flops * reps / in_kernel / 1e9;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    const double seconds = harness::smokeMode() ? 0.02 : 0.25;

    std::printf("%-10s %-18s %12s %12s %9s\n", "variant", "shape",
                "scalar GF/s", "vector GF/s", "speedup");
    for (auto v : {Variant::Accum, Variant::AccumBt, Variant::AccumAt}) {
        for (const auto& s : kShapes) {
            double sc =
                measure(nn::scalarBackend(), v, s, seconds);
            double ve =
                measure(nn::vectorBackend(), v, s, seconds);
            std::string shape = util::format("m%d_k%d_n%d", s.m, s.k, s.n);
            std::printf("%-10s %-18s %12.2f %12.2f %8.2fx\n",
                        variantName(v), shape.c_str(), sc, ve, ve / sc);
            std::string base =
                util::format("%s_%s", variantName(v), shape.c_str());
            bench::csv("nn_gemm", (base + "_scalar_gflops").c_str(), sc);
            bench::csv("nn_gemm", (base + "_vector_gflops").c_str(), ve);
            bench::csv("nn_gemm", (base + "_speedup").c_str(), ve / sc);
        }
    }
    return 0;
}
