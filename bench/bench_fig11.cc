/**
 * @file
 * Figure 11 reproduction: power MAPE per Table-2 workload, LLMulator vs
 * the Timeloop-style analytical baseline.
 *
 * As in the paper, Timeloop cannot natively model control-flow
 * variability or heterogeneous operator sequences; branchy operators are
 * decomposed into always-executed tensor ops and aggregated externally
 * (baselines/timeloop.cc), losing fidelity.
 *
 * Expected shape (paper): Ours below Timeloop on average
 * (10.2% vs 16.2% there).
 */

#include <cstdio>

#include "baselines/timeloop.h"
#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"

using namespace llmulator;
using model::Metric;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Figure 11: power MAPE, LLMulator vs Timeloop, on "
                "Table-2 workloads\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        harness::defaultTrainConfig(),
                                        "main_ours");
    auto modern = workloads::modern();
    auto fn_ours = harness::predictOurs(*ours);
    auto e_ours = harness::workloadErrors(fn_ours, modern, Metric::Power);

    eval::Table t({"Workload", "Ours", "Timeloop", "TL decomposed?"});
    std::vector<double> e_tl;
    for (size_t i = 0; i < modern.size(); ++i) {
        auto truth = harness::groundTruth(modern[i]);
        auto res = baselines::timeloopEvaluate(modern[i].graph);
        double err = eval::absPctError(
            static_cast<long>(res.powerUw), truth.power);
        e_tl.push_back(err);
        t.addRow({modern[i].name, eval::pct(e_ours[i]), eval::pct(err),
                  res.fullySupported ? "no" : "yes"});
    }
    t.addRow({"average", eval::pct(eval::mean(e_ours)),
              eval::pct(eval::mean(e_tl)), ""});
    t.print();
    std::printf("\n[shape] Ours %.1f%% vs Timeloop %.1f%% (paper: "
                "10.2%% vs 16.2%%)\n",
                eval::mean(e_ours) * 100, eval::mean(e_tl) * 100);
    bench::csv("fig11", "mape_ours_power", eval::mean(e_ours));
    bench::csv("fig11", "mape_timeloop_power", eval::mean(e_tl));
    return 0;
}
