/**
 * @file
 * Table 7 reproduction: ablation of the progressive data synthesizer.
 * "No-A" trains on AST-based programs with the direct data format only
 * (no dataflow-specific stage, no LLM-mutation stage, no hardware
 * augmentation, no input variants); "All" is the full Section 6 pipeline.
 * MAPE is reported per Table-2 workload across all four metrics.
 *
 * Expected shape (paper): the full synthesizer reduces average MAPE on
 * every metric (27.1% -> 14.2% class on area/FF there).
 */

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"

using namespace llmulator;
using model::Metric;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 7: progressive data synthesis ablation (No-A vs "
                "All) on Table-2 workloads\n");

    synth::SynthConfig scfg = harness::defaultSynthConfig();
    synth::Dataset full = harness::defaultDataset(scfg);
    synth::SynthConfig no_cfg = scfg;
    no_cfg.numPrograms =
        static_cast<int>(full.size()); // match sample budget
    synth::Dataset noaug = synth::synthesizeNoAugmentation(no_cfg);
    std::printf("[setup] No-A: %zu samples, All: %zu samples\n",
                noaug.size(), full.size());

    harness::TrainConfig tcfg = harness::defaultTrainConfig();
    auto m_full = harness::trainCostModel(harness::defaultOursConfig(),
                                          full, tcfg, "main_ours");
    auto m_noaug = harness::trainCostModel(harness::defaultOursConfig(),
                                           noaug, tcfg, "t7_noaug");

    auto modern = workloads::modern();
    auto fn_full = harness::predictOurs(*m_full);
    auto fn_noaug = harness::predictOurs(*m_noaug);

    eval::Table t({"Workload", "Power No-A", "Power All", "Area No-A",
                   "Area All", "FF No-A", "FF All", "Cycles No-A",
                   "Cycles All"});
    std::vector<double> avg_no(model::kNumMetrics, 0),
        avg_all(model::kNumMetrics, 0);
    std::vector<std::vector<double>> e_no, e_all;
    for (int mi = 0; mi < model::kNumMetrics; ++mi) {
        auto metric = static_cast<Metric>(mi);
        e_no.push_back(harness::workloadErrors(fn_noaug, modern, metric));
        e_all.push_back(harness::workloadErrors(fn_full, modern, metric));
    }
    for (size_t i = 0; i < modern.size(); ++i) {
        std::vector<std::string> row = {modern[i].name};
        for (int mi = 0; mi < model::kNumMetrics; ++mi) {
            row.push_back(eval::pct(e_no[mi][i]));
            row.push_back(eval::pct(e_all[mi][i]));
            avg_no[mi] += e_no[mi][i] / modern.size();
            avg_all[mi] += e_all[mi][i] / modern.size();
        }
        t.addRow(row);
    }
    std::vector<std::string> avg_row = {"average"};
    for (int mi = 0; mi < model::kNumMetrics; ++mi) {
        avg_row.push_back(eval::pct(avg_no[mi]));
        avg_row.push_back(eval::pct(avg_all[mi]));
    }
    t.addRow(avg_row);
    t.print();

    double no_mean = eval::mean(avg_no), all_mean = eval::mean(avg_all);
    std::printf("\n[shape] overall MAPE: No-A %.1f%% -> All %.1f%% "
                "(paper: 27.1%% -> 14.2%% class)\n", no_mean * 100,
                all_mean * 100);
    bench::csv("table7", "mape_noaug", no_mean);
    bench::csv("table7", "mape_full", all_mean);
    return 0;
}
