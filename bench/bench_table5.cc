/**
 * @file
 * Table 5 reproduction: LLMulator cycle-prediction latency on the Table-2
 * workloads, without vs with dynamic prediction acceleration
 * (Section 5.3 progressive operator caching + selective masking).
 *
 * Protocol: the session first evaluates the workload on its canonical
 * input (priming the static-prefix cache), then the timed prediction runs
 * on a *different* runtime input — the design-space-exploration pattern
 * the paper accelerates. NoAccel recomputes everything; HasAccel reuses
 * cached Class-I-operator and parameter rows.
 *
 * Expected shape (paper): HasAccel < NoAccel on average (1.23s -> 1.00s).
 */

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "harness/harness.h"
#include "model/fast_encoder.h"

using namespace llmulator;
using Clock = std::chrono::steady_clock;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 5: cycle-prediction latency (seconds), no "
                "acceleration vs dynamic prediction acceleration\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        harness::defaultTrainConfig(),
                                        "main_ours");
    auto modern = workloads::modern();

    eval::Table t({"Tab. 2-Index", "NoAccel", "HasAccel", "RowsReused"});
    double sum_no = 0, sum_acc = 0;
    for (size_t i = 0; i < modern.size(); ++i) {
        const auto& w = modern[i];
        const dfir::RuntimeData& probe =
            w.variants.empty() ? w.canonicalData : w.variants[0];
        auto ep_prime = ours->encode(w.graph, &w.canonicalData);
        auto ep_probe = ours->encode(w.graph, &probe);

        // Without acceleration: every prediction is a full forward.
        model::InferenceSession cold(*ours);
        auto t0 = Clock::now();
        for (int rep = 0; rep < 3; ++rep)
            cold.predict(ep_probe, model::Metric::Cycles, false);
        double no_accel =
            std::chrono::duration<double>(Clock::now() - t0).count() / 3;

        // With acceleration: prime on the canonical input, then the probe
        // input reuses the static prefix.
        model::InferenceSession warm(*ours);
        warm.predict(ep_prime, model::Metric::Cycles, true);
        long reused_before = warm.stats().rowsReused;
        auto t1 = Clock::now();
        for (int rep = 0; rep < 3; ++rep)
            warm.predict(ep_probe, model::Metric::Cycles, true);
        double has_accel =
            std::chrono::duration<double>(Clock::now() - t1).count() / 3;
        long reused =
            (warm.stats().rowsReused - reused_before) / 3;

        sum_no += no_accel;
        sum_acc += has_accel;
        t.addRow({std::to_string(i + 1), eval::secs(no_accel),
                  eval::secs(has_accel), std::to_string(reused)});
    }
    t.addRow({"average", eval::secs(sum_no / modern.size()),
              eval::secs(sum_acc / modern.size()), ""});
    t.print();
    std::printf("\n[shape] acceleration speedup: %.2fx (paper: 1.23x "
                "average, 1.23s -> 1.00s)\n",
                sum_no / std::max(1e-12, sum_acc));
    bench::csv("table5", "latency_noaccel_s", sum_no / modern.size());
    bench::csv("table5", "latency_hasaccel_s", sum_acc / modern.size());
    bench::csv("table5", "accel_speedup",
               sum_no / std::max(1e-12, sum_acc));
    return 0;
}
