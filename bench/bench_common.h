#ifndef LLMULATOR_BENCH_BENCH_COMMON_H
#define LLMULATOR_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared CLI handling and machine-readable output for the bench suite.
 *
 * Every bench binary accepts `--quick`, which switches the harness into
 * smoke mode (small synthesized corpus, one training epoch) so the full
 * suite can run in CI. Headline aggregates are additionally emitted as
 * `name,metric,value` CSV lines on stdout (prefix-free, one per line) so
 * result trajectories can be scraped without parsing the pretty tables.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/harness.h"
#include "obs/metrics.h"

namespace llmulator {
namespace bench {

/**
 * Parse bench CLI flags. `--quick` forces harness smoke mode; unknown
 * flags abort with a usage message. Line-buffers stdout so progress is
 * visible when piped into a file or CI log.
 */
inline void
parseArgs(int argc, char** argv)
{
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            harness::forceSmokeMode(true);
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            std::exit(2);
        }
    }
}

/** Emit one scrapeable `name,metric,value` CSV line. */
inline void
csv(const char* name, const char* metric, double value)
{
    std::printf("%s,%s,%.6g\n", name, metric, value);
    std::fflush(stdout);
}

/**
 * Flatten a metrics registry snapshot into the bench CSV stream: one
 * `<benchName>,<instrument>.<metric>,<value>` line per registry row
 * (counters: .count; gauges: .value; histograms: .count/.sum/.mean/
 * .min/.max/.p50/.p95/.p99). `prefix` filters by instrument-name
 * prefix, e.g. "nn." for just the GEMM counters.
 */
inline void
dumpRegistryCsv(const char* benchName, const obs::Registry& reg,
                const std::string& prefix = "")
{
    for (const obs::Registry::Row& row : reg.rows(prefix))
        csv(benchName, (row.name + "." + row.metric).c_str(), row.value);
}

} // namespace bench
} // namespace llmulator

#endif // LLMULATOR_BENCH_BENCH_COMMON_H
