/**
 * @file
 * DFIR canonicalization benchmark: throughput of the full pass pipeline
 * over the workload corpus, canonical-hash latency, and the serve
 * result-cache hit-rate delta between raw structural keys and canonical
 * keys on a stream of semantically equivalent program mutants
 * (renamed values, commuted operands, injected dead code, and
 * proven-legal loop interchanges), plus the schedule-family hit rate
 * (dfir::scheduleFamilyHash via net::PersistentResultCache::
 * recordFamily) on the same stream — the family key also collapses the
 * interchange mutants that exact canonical keys must miss — and the
 * synthesizer dataset redundancy under both keys (synth::datasetStats).
 *
 * Emits `name,metric,value` CSV lines; `--quick` shrinks the mutant
 * stream and timing repetitions for CI smoke runs.
 */

#include <chrono>
#include <vector>

#include "bench_common.h"
#include "dfir/passes.h"
#include "dfir/schedule.h"
#include "net/persist_cache.h"
#include "serve/result_cache.h"
#include "synth/dataset.h"
#include "synth/generators.h"
#include "util/rng.h"
#include "workloads/workloads.h"

using namespace llmulator;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One (graph, data) query in the mutation stream. */
struct Query
{
    dfir::DataflowGraph graph;
    dfir::RuntimeData data;
};

/** Replay the stream against a fresh cache; returns the hit rate. */
double
replayHitRate(const std::vector<Query>& stream, bool canonical)
{
    serve::ResultCache cache(4096, 8);
    model::NumericPrediction dummy;
    dummy.value = 1.0;
    size_t hits = 0;
    for (const auto& q : stream) {
        serve::ResultKey key;
        if (canonical) {
            dfir::CanonResult canon = dfir::canonicalizeEx(q.graph);
            key.program = dfir::structuralHash(canon.graph);
            key.input = serve::hashRuntimeData(
                dfir::remapRuntimeData(q.data, canon.scalarRenames));
        } else {
            key.program = dfir::structuralHash(q.graph);
            key.input = serve::hashRuntimeData(q.data);
        }
        model::NumericPrediction out;
        if (cache.get(key, out))
            ++hits;
        else
            cache.put(key, dummy);
    }
    return stream.empty() ? 0.0 : double(hits) / double(stream.size());
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    const bool quick = harness::smokeMode();
    const int mutants_per_base = quick ? 2 : 6;
    const int timing_reps = quick ? 3 : 20;

    std::vector<workloads::Workload> corpus;
    for (auto& w : workloads::polybench())
        corpus.push_back(std::move(w));
    for (auto& w : workloads::modern())
        corpus.push_back(std::move(w));
    for (auto& w : workloads::accelerators())
        corpus.push_back(std::move(w));

    // Canonicalization throughput over the corpus.
    {
        auto t0 = Clock::now();
        size_t n = 0;
        for (int rep = 0; rep < timing_reps; ++rep)
            for (const auto& w : corpus) {
                dfir::DataflowGraph canon = dfir::canonicalize(w.graph);
                n += canon.ops.size(); // keep the work observable
            }
        double secs = secondsSince(t0);
        (void)n;
        bench::csv("bench_dfir_canon", "canonicalize_graphs_per_s",
                   double(timing_reps) * double(corpus.size()) / secs);
    }

    // Canonical-hash latency (full pipeline + structural hash).
    {
        auto t0 = Clock::now();
        uint64_t acc = 0;
        for (int rep = 0; rep < timing_reps; ++rep)
            for (const auto& w : corpus)
                acc ^= dfir::canonicalHash(w.graph);
        double secs = secondsSince(t0);
        (void)acc;
        bench::csv("bench_dfir_canon", "canonical_hash_us_mean",
                   secs * 1e6 /
                       (double(timing_reps) * double(corpus.size())));
    }

    // Serve-cache hit rates on the equivalent-mutation stream: every
    // base query followed by semantically identical rewrites. Canonical
    // keys should collapse each family to one entry; raw keys miss on
    // every rename. Legal-interchange mutants are part of the stream
    // too: exact canonical keys miss them by design (the schedule moved,
    // so cycles moved), which is exactly the gap the family rows below
    // measure.
    std::vector<Query> stream;
    util::Rng rng(20260809);
    size_t interchanges = 0;
    for (const auto& w : corpus) {
        stream.push_back({w.graph, w.canonicalData});
        for (int m = 0; m < mutants_per_base; ++m) {
            synth::EquivalentMutant mut =
                synth::equivalentMutant(w.graph, rng);
            // The mutant renames scalars, so rename its data to match —
            // the inverse map is what a caller of the variant would use.
            std::map<std::string, std::string> fwd;
            for (const auto& kv : mut.scalarRenames)
                fwd[kv.first] = kv.second;
            stream.push_back(
                {std::move(mut.graph),
                 dfir::remapRuntimeData(w.canonicalData, fwd)});
        }
        for (int m = 0; m < mutants_per_base; ++m) {
            synth::ScheduleMutant mut = synth::scheduleMutant(w.graph, rng);
            if (!mut.changed)
                break; // no legal interchange in this workload
            interchanges += static_cast<size_t>(mut.interchanges);
            // No renames: the base's runtime data is valid as-is.
            stream.push_back({std::move(mut.graph), w.canonicalData});
        }
    }

    double hit_raw = replayHitRate(stream, false);
    double hit_canon = replayHitRate(stream, true);
    bench::csv("bench_dfir_canon", "stream_queries",
               double(stream.size()));
    bench::csv("bench_dfir_canon", "stream_interchanges",
               double(interchanges));
    bench::csv("bench_dfir_canon", "hit_rate_raw", hit_raw);
    bench::csv("bench_dfir_canon", "hit_rate_canonical", hit_canon);
    bench::csv("bench_dfir_canon", "hit_rate_delta", hit_canon - hit_raw);

    // Family hit rate on the same stream, recorded the way the fleet
    // front-end would: PersistentResultCache::recordFamily alongside
    // each probe. Families are statistics only — the exact ResultKey
    // path above is untouched — but on this stream the family key also
    // collapses the interchange mutants, so hit_rate_family >=
    // hit_rate_canonical.
    {
        net::PersistentResultCache cache(4096);
        for (const auto& q : stream)
            cache.recordFamily(dfir::scheduleFamilyHash(q.graph));
        net::PersistentResultCache::FamilyStats fs = cache.familyStats();
        bench::csv("bench_dfir_canon", "hit_rate_family",
                   fs.probes ? double(fs.hits) / double(fs.probes) : 0.0);
        bench::csv("bench_dfir_canon", "family_distinct",
                   double(fs.distinct));
        bench::csv("bench_dfir_canon", "hit_rate_family_delta",
                   (fs.probes ? double(fs.hits) / double(fs.probes) : 0.0) -
                       hit_canon);
    }

    // Synthesizer dataset redundancy under exact vs family keys.
    {
        synth::SynthConfig cfg;
        cfg.numPrograms = quick ? 12 : 48;
        cfg.inputVariants = false; // program structure is what matters
        synth::DatasetStats ds = synth::datasetStats(synth::synthesize(cfg));
        bench::csv("bench_dfir_canon", "dataset_samples",
                   double(ds.samples));
        bench::csv("bench_dfir_canon", "dataset_distinct_canonical",
                   double(ds.distinctCanonical));
        bench::csv("bench_dfir_canon", "dataset_distinct_families",
                   double(ds.distinctFamilies));
    }
    return 0;
}
