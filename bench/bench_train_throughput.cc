/**
 * @file
 * Training-throughput bench for the shared minibatch engine: trains the
 * same cost model on the same corpus at 1/4/8 worker threads and reports
 * samples/sec, epoch time, the 8-vs-1 speedup, and a bit-identical-loss
 * check across the thread counts (the engine's determinism guarantee,
 * measured rather than assumed).
 *
 * The corpus is pre-encoded once outside the timed region and shared by
 * every run (encodings depend only on the tokenizer, not the weights),
 * so the timer covers exactly the engine — the serial encode cost would
 * otherwise drag every speedup toward 1x by Amdahl's law.
 *
 * CSV lines (name,metric,value):
 *   train_throughput,samples_per_sec_t<T>,<v>
 *   train_throughput,epoch_time_ms_t<T>,<v>
 *   train_throughput,speedup_t4,<v>
 *   train_throughput,speedup_t8,<v>
 *   train_throughput,loss_bitmatch,<1|0>
 *   train_throughput,intra_samples_per_sec_b<B>,<v>   (intra-batch mode)
 *   train_throughput,intra_speedup_b<B>,<v vs 1-thread per-sample at the
 *                                        same batch size>
 *   train_throughput,nn.*,<GEMM call/FLOP counters and trainer gauges
 *     from one short instrumented epoch, run AFTER the timed sweeps so
 *     the rows above stay free of telemetry overhead>
 *
 * Speedups depend on the machine: on a single-core container all thread
 * counts necessarily measure ~1x; the scaling target (>= 2x at 8
 * threads) is meaningful on multicore hardware such as the CI runners.
 */

#include <chrono>
#include <vector>

#include "bench_common.h"
#include "harness/harness.h"
#include "model/fast_encoder.h"
#include "util/string_util.h"

using namespace llmulator;

namespace {

struct RunResult
{
    double samplesPerSec = 0.0;
    double epochMs = 0.0;
    harness::TrainStats stats;
};

RunResult
runAt(int threads, const model::CostModelConfig& mcfg,
      const synth::Dataset& ds,
      const std::vector<model::TrainingEncoding>& encs,
      const harness::TrainConfig& tcfg)
{
    // Fresh model per run: same config seed, so every thread count
    // trains identical weights from an identical starting point. The
    // pre-encoded-corpus overload is the exact production engine path,
    // minus the serial encode cost.
    model::CostModel master(mcfg);
    harness::TrainConfig cfg = tcfg;
    cfg.trainThreads = threads;

    auto t0 = std::chrono::steady_clock::now();
    RunResult r;
    r.stats = harness::trainCostModelUncached(master, ds, encs, cfg);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0.0)
        r.samplesPerSec = static_cast<double>(r.stats.samples) / secs;
    r.epochMs = 1e3 * secs / std::max(1, cfg.epochs);
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    bool quick = harness::smokeMode();

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    model::CostModelConfig mcfg = harness::defaultOursConfig();

    harness::TrainConfig tcfg;
    tcfg.epochs = quick ? 2 : 4;

    // Encode once, outside every timed region (weight-independent).
    model::CostModel proto(mcfg);
    std::vector<model::TrainingEncoding> encs;
    encs.reserve(ds.samples.size());
    for (const auto& s : ds.samples)
        encs.push_back(model::encodeForTraining(
            proto, s.graph, s.hasData ? &s.data : nullptr, s.reasoning));

    std::printf("# train throughput: %zu samples, %d epochs, batch %d%s\n",
                ds.samples.size(), tcfg.epochs, tcfg.batchSize,
                quick ? " (quick)" : "");

    const int kThreadCounts[] = {1, 4, 8};
    RunResult results[3];
    for (int i = 0; i < 3; ++i) {
        int t = kThreadCounts[i];
        results[i] = runAt(t, mcfg, ds, encs, tcfg);
        bench::csv("train_throughput",
                   util::format("samples_per_sec_t%d", t).c_str(),
                   results[i].samplesPerSec);
        bench::csv("train_throughput",
                   util::format("epoch_time_ms_t%d", t).c_str(),
                   results[i].epochMs);
    }

    bench::csv("train_throughput", "speedup_t4",
               results[1].samplesPerSec / results[0].samplesPerSec);
    bench::csv("train_throughput", "speedup_t8",
               results[2].samplesPerSec / results[0].samplesPerSec);

    // Determinism cross-check: per-epoch mean losses must agree bitwise
    // across every thread count.
    bool bitmatch = true;
    for (int i = 1; i < 3; ++i)
        bitmatch &= results[i].stats.epochLoss ==
                    results[0].stats.epochLoss;
    bench::csv("train_throughput", "loss_bitmatch", bitmatch ? 1 : 0);
    if (!bitmatch) {
        std::fprintf(stderr,
                     "ERROR: loss trajectories diverged across thread "
                     "counts\n");
        return 1;
    }

    // Intra-batch sweep: the batch-first forward (one lossBatch graph
    // per minibatch) at batch sizes 1/4/8, single-threaded. Each run is
    // compared against a 1-thread per-sample run at the SAME batch size
    // — identical optimizer step counts, so the speedup isolates the
    // batched forward math rather than step-frequency overhead.
    for (int b : {1, 4, 8}) {
        harness::TrainConfig pcfg = tcfg;
        pcfg.batchSize = b;
        RunResult base = runAt(1, mcfg, ds, encs, pcfg);
        harness::TrainConfig icfg = pcfg;
        icfg.intraBatch = true;
        RunResult r = runAt(1, mcfg, ds, encs, icfg);
        bench::csv("train_throughput",
                   util::format("intra_samples_per_sec_b%d", b).c_str(),
                   r.samplesPerSec);
        bench::csv("train_throughput",
                   util::format("intra_speedup_b%d", b).c_str(),
                   base.samplesPerSec <= 0
                       ? 0
                       : r.samplesPerSec / base.samplesPerSec);
    }

    // Instrumented pass, AFTER every timed sweep so the throughput rows
    // above never carry telemetry cost: one short single-threaded epoch
    // with the global metrics gate on, dumping GEMM call/FLOP counters
    // (per kernel per backend) and the trainer step/loss gauges.
    obs::registry().reset();
    obs::setMetricsEnabled(true);
    {
        harness::TrainConfig icfg = tcfg;
        icfg.epochs = 1;
        runAt(1, mcfg, ds, encs, icfg);
    }
    obs::setMetricsEnabled(false);
    bench::dumpRegistryCsv("train_throughput", obs::registry(), "nn.");
    bench::dumpRegistryCsv("train_throughput", obs::registry(), "trainer.");
    return 0;
}
