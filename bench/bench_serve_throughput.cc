/**
 * @file
 * Serving-throughput benchmark: drives a PredictionServer over the
 * PolyBench evaluation workloads and reports requests/sec and p95
 * latency at 1/4/8-worker configurations (result cache disabled, so
 * every request exercises the model), plus the cache hit rate and
 * cached throughput for a repeat-heavy traffic mix.
 *
 * CSV lines (name,metric,value):
 *   serve_throughput,hw_threads,<hardware concurrency>
 *   serve_throughput,rps_w<N>,<req/s with N workers>
 *   serve_throughput,p95_ms_w<N>,<p95 latency with N workers>
 *   serve_throughput,speedup_w<N>,<rps_wN / rps_w1>
 *   serve_throughput,rps_b<B>,<req/s with micro-batch cap B, 2 workers>
 *   serve_throughput,p95_ms_b<B>,<p95 latency with micro-batch cap B>
 *   serve_throughput,speedup_b<B>,<rps_bB / rps_b1>
 *   serve_throughput,cached_rps,<req/s, cache enabled, repeat mix>
 *   serve_throughput,cache_hit_rate,<fraction in [0,1]>
 *   serve_throughput,queue_wait_p99_ms_w<N>,<queue-wait p99, N workers>
 *   serve_throughput,stage_share_<stage>,<stage share of per-batch
 *     stage time, 4-worker run: assembly|forward|decode|cache_fill>
 *   serve_throughput,serve.*,<stage-histogram registry rows from one
 *     instrumented pass>
 *   serve_throughput,nn.*,<GEMM call/FLOP counters from the same pass>
 *
 * The instrumented pass runs AFTER every timed phase (and the global
 * metrics gate stays off during them), so the rps/p95 rows above are
 * never polluted by telemetry cost.
 *
 * Multi-worker speedup tracks the machine's core count: on a 1-core
 * host the w4/w8 rows land near 1.0, on CI-class 4-vCPU hosts they
 * exceed the 1-worker baseline. The batch sweep (batchMax 1/4/8 at a
 * fixed worker count) isolates the batch-first forward instead: larger
 * micro-batches mean fewer, bigger forwardPooledBatch calls per worker,
 * so its speedup is visible even on one core.
 */

#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/table.h"
#include "harness/harness.h"
#include "serve/server.h"
#include "util/string_util.h"
#include "workloads/workloads.h"

using namespace llmulator;

namespace {

struct Query
{
    const workloads::Workload* w;
    const dfir::RuntimeData* data;
    model::Metric metric;
};

/** Every (workload, input variant, metric) combination once. */
std::vector<Query>
buildQueries(const std::vector<workloads::Workload>& ws)
{
    std::vector<Query> qs;
    for (const auto& w : ws) {
        for (int m = 0; m < model::kNumMetrics; ++m) {
            auto metric = static_cast<model::Metric>(m);
            if (metric == model::Metric::Cycles) {
                qs.push_back({&w, &w.canonicalData, metric});
                for (const auto& var : w.variants)
                    qs.push_back({&w, &var, metric});
            } else {
                qs.push_back({&w, nullptr, metric});
            }
        }
    }
    return qs;
}

struct RunResult
{
    double rps = 0;
    double p95Ms = 0;
    double hitRate = 0;
    serve::ServerStats stats; //!< full snapshot, taken before teardown
};

/**
 * Submit `queries` `repeats` times from `clients` threads against a
 * fresh server built on a clone of `base`, then report the measured
 * stats. Async submission floods the queue so the workers (not the
 * clients) are the bottleneck being measured; blocking submission
 * models interactive repeat traffic (a DSE loop re-querying designs),
 * where later rounds should be answered straight from the cache.
 */
RunResult
runConfig(const model::CostModel& base, const serve::ServeConfig& cfg,
          const std::vector<Query>& queries, int repeats, int clients,
          bool blocking)
{
    serve::PredictionServer server(base.clone(), cfg);
    auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> pool;
    std::vector<std::vector<std::future<model::NumericPrediction>>>
        futures(clients);
    for (int t = 0; t < clients; ++t) {
        pool.emplace_back([&, t] {
            for (int r = 0; r < repeats; ++r)
                for (size_t i = t; i < queries.size();
                     i += size_t(clients)) {
                    const Query& q = queries[i];
                    if (blocking)
                        server.predict(q.w->graph, q.data, q.metric);
                    else
                        futures[t].push_back(server.submitAsync(
                            q.w->graph, q.data, q.metric));
                }
        });
    }
    for (auto& th : pool)
        th.join();
    for (auto& fs : futures)
        for (auto& f : fs)
            f.get();

    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    auto stats = server.stats();
    RunResult res;
    res.rps = elapsed <= 0 ? 0 : double(stats.completed) / elapsed;
    res.p95Ms = stats.p95LatencyMs;
    res.hitRate = stats.hitRate();
    res.stats = stats;
    return res;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    bool quick = harness::smokeMode();

    // Shared training artifact (same cache key as the rest of the
    // bench suite / the serve_demo smoke test).
    synth::Dataset ds =
        harness::defaultDataset(harness::defaultSynthConfig());
    auto model = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                         harness::defaultTrainConfig(),
                                         "main_ours");

    auto ws = workloads::polybench();
    if (quick)
        ws.resize(4);
    std::vector<Query> queries = buildQueries(ws);
    const int repeats = quick ? 1 : 3;
    const int clients = 4;

    bench::csv("serve_throughput", "hw_threads",
               double(std::thread::hardware_concurrency()));

    // Phase 1 — worker scaling, cache off: every request runs the model.
    eval::Table table({"workers", "req/s", "p95 (ms)", "speedup"});
    double baselineRps = 0;
    for (int workers : {1, 4, 8}) {
        serve::ServeConfig cfg;
        cfg.workers = workers;
        cfg.cacheCapacity = 0;
        RunResult r = runConfig(*model, cfg, queries, repeats, clients,
                                /*blocking=*/false);
        if (workers == 1)
            baselineRps = r.rps;
        double speedup = baselineRps <= 0 ? 0 : r.rps / baselineRps;
        table.addRow({std::to_string(workers),
                      util::format("%.1f", r.rps),
                      util::format("%.2f", r.p95Ms),
                      util::format("%.2fx", speedup)});
        bench::csv("serve_throughput",
                   util::format("rps_w%d", workers).c_str(), r.rps);
        bench::csv("serve_throughput",
                   util::format("p95_ms_w%d", workers).c_str(), r.p95Ms);
        bench::csv("serve_throughput",
                   util::format("queue_wait_p99_ms_w%d", workers).c_str(),
                   r.stats.queueWaitP99Ms);
        if (workers > 1)
            bench::csv("serve_throughput",
                       util::format("speedup_w%d", workers).c_str(),
                       speedup);
        if (workers == 4) {
            // Per-stage share of the summed per-batch stage means, so
            // the trajectory shows where batch wall time goes.
            double tot = r.stats.meanAssemblyMs + r.stats.meanForwardMs +
                         r.stats.meanDecodeMs + r.stats.meanCacheFillMs;
            if (tot > 0) {
                bench::csv("serve_throughput", "stage_share_assembly",
                           r.stats.meanAssemblyMs / tot);
                bench::csv("serve_throughput", "stage_share_forward",
                           r.stats.meanForwardMs / tot);
                bench::csv("serve_throughput", "stage_share_decode",
                           r.stats.meanDecodeMs / tot);
                bench::csv("serve_throughput", "stage_share_cache_fill",
                           r.stats.meanCacheFillMs / tot);
            }
        }
    }
    std::printf("== worker scaling (cache disabled) ==\n");
    table.print();

    // Phase 1.5 — micro-batch scaling at a fixed worker count: each
    // pop of up to batchMax requests becomes ONE batched encoder
    // forward + per-metric batched decode, so this sweep measures the
    // batch-first forward path itself.
    eval::Table btable({"batchMax", "req/s", "p95 (ms)", "speedup"});
    double batchBaselineRps = 0;
    for (int batchMax : {1, 4, 8}) {
        serve::ServeConfig cfg;
        cfg.workers = 2;
        cfg.batchMax = batchMax;
        cfg.cacheCapacity = 0;
        RunResult r = runConfig(*model, cfg, queries, repeats, clients,
                                /*blocking=*/false);
        if (batchMax == 1)
            batchBaselineRps = r.rps;
        double speedup =
            batchBaselineRps <= 0 ? 0 : r.rps / batchBaselineRps;
        btable.addRow({std::to_string(batchMax),
                       util::format("%.1f", r.rps),
                       util::format("%.2f", r.p95Ms),
                       util::format("%.2fx", speedup)});
        bench::csv("serve_throughput",
                   util::format("rps_b%d", batchMax).c_str(), r.rps);
        bench::csv("serve_throughput",
                   util::format("p95_ms_b%d", batchMax).c_str(), r.p95Ms);
        if (batchMax > 1)
            bench::csv("serve_throughput",
                       util::format("speedup_b%d", batchMax).c_str(),
                       speedup);
    }
    std::printf("== micro-batch scaling (2 workers, cache disabled) ==\n");
    btable.print();

    // Phase 2 — repeat-heavy traffic with the cache on: after the first
    // pass every query is a repeat, so the hit rate climbs toward 1 and
    // throughput decouples from model speed.
    serve::ServeConfig cached;
    cached.workers = 4;
    RunResult r = runConfig(*model, cached, queries, repeats * 3, clients,
                            /*blocking=*/true);
    std::printf("== repeat-heavy mix (cache enabled) ==\n"
                "req/s=%.1f hit_rate=%.1f%%\n",
                r.rps, r.hitRate * 100.0);
    bench::csv("serve_throughput", "cached_rps", r.rps);
    bench::csv("serve_throughput", "cache_hit_rate", r.hitRate);

    // Phase 3 — one instrumented pass, AFTER every timed phase so the
    // pinned rps/p95 rows above never carry telemetry cost: turn the
    // global metrics gate on to count GEMM calls/FLOPs under the
    // serving forward, and snapshot the server's own stage histograms.
    obs::registry().reset();
    obs::setMetricsEnabled(true);
    {
        serve::ServeConfig cfg;
        cfg.workers = 2;
        cfg.cacheCapacity = 0;
        serve::PredictionServer server(model->clone(), cfg);
        for (const Query& q : queries)
            server.predict(q.w->graph, q.data, q.metric);
        server.stop();
        bench::dumpRegistryCsv("serve_throughput", server.telemetry());
    }
    bench::dumpRegistryCsv("serve_throughput", obs::registry(), "nn.");
    obs::setMetricsEnabled(false);
    return 0;
}
