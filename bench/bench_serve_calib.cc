/**
 * @file
 * Live-calibration benchmark: a calibration-enabled PredictionServer
 * under synthetic traffic drift. Measures how far DPO calibration pulls
 * serving MAPE back down (Table 3's convergence story, but *online*)
 * and what the RCU hot-swap costs the serving path.
 *
 * Structure:
 *  - steady phase: traffic from the small-N regime, latencies sampled
 *    client-side -> p99_ms_steady (drift baseline forms here);
 *  - drift phase: the input distribution jumps to the large-N regime;
 *    MAPE vs the cycle-accurate simulator is measured before any swap
 *    (mape_before_calib), then drifted traffic flows while the drift
 *    detector and background calibrator react -> p99_ms_during_swap is
 *    the same client-side p99 with calibration rounds + swaps landing
 *    mid-stream (if drift never fires, a round is forced so the swap
 *    cost is still measured — the forced_rounds row says which);
 *  - convergence: further calibration rounds are forced, recomputing
 *    MAPE after each -> mape_round<r> is the MAPE-vs-iterations curve,
 *    mape_after_calib its final point.
 *
 * CSV lines (name,metric,value):
 *   serve_calib,mape_before_calib,<MAPE on drifted inputs, version 0>
 *   serve_calib,mape_round<r>,<MAPE after calibration round r>
 *   serve_calib,mape_after_calib,<final MAPE on drifted inputs>
 *   serve_calib,swap_count,<hot-swaps performed>
 *   serve_calib,forced_rounds,<rounds forced vs drift-triggered>
 *   serve_calib,model_version,<final weight generation>
 *   serve_calib,p99_ms_steady,<client-side p99, steady phase>
 *   serve_calib,p99_ms_during_swap,<client-side p99, swap window>
 *   serve_calib,calib.*,<shadow/drift/round registry rows>
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "dfir/builder.h"
#include "harness/harness.h"
#include "serve/server.h"
#include "sim/profiler.h"

using namespace llmulator;
using namespace llmulator::dfir;

namespace {

using Clock = std::chrono::steady_clock;

/** The test kernel: a vector scale loop, distinct per bias. */
DataflowGraph
makeGraph(long bias)
{
    Operator op;
    op.name = "scale";
    op.scalarParams = {"N"};
    op.tensors = {tensor("X", {p("N")}), tensor("Y", {p("N")})};
    op.body = {forLoop("i", c(0), p("N"),
                       {assign("Y", {v("i")},
                               badd(a("X", {v("i")}), c(bias)))})};
    DataflowGraph g;
    g.name = "calib_kernel_" + std::to_string(bias);
    g.ops = {op};
    g.calls = {{"scale"}};
    return g;
}

struct Sample
{
    DataflowGraph graph;
    RuntimeData data;
    long truth = 0; //!< sim::profile ground-truth cycles
};

/** One regime: the kernels crossed with a band of loop bounds. */
std::vector<Sample>
makeRegime(const std::vector<long>& ns)
{
    std::vector<Sample> out;
    for (long bias : {1, 2, 3}) {
        DataflowGraph g = makeGraph(bias);
        for (long n : ns) {
            Sample s;
            s.graph = g;
            s.data.scalars["N"] = n;
            s.truth = sim::profile(s.graph, s.data).cycles;
            out.push_back(std::move(s));
        }
    }
    return out;
}

double
percentile(std::vector<double> v, double q)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    return v[size_t(q * double(v.size() - 1))];
}

/** One blocking pass over a regime, recording client-side latencies. */
void
drive(serve::PredictionServer& server, const std::vector<Sample>& regime,
      std::vector<double>* latencies)
{
    for (const Sample& s : regime) {
        auto t0 = Clock::now();
        server.predict(s.graph, &s.data, model::Metric::Cycles);
        if (latencies)
            latencies->push_back(
                std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count());
    }
}

/** Serving MAPE vs the precomputed profiler truth. */
double
mapeOn(serve::PredictionServer& server, const std::vector<Sample>& regime)
{
    double sum = 0;
    for (const Sample& s : regime) {
        auto pred = server.predict(s.graph, &s.data, model::Metric::Cycles);
        sum += std::fabs(double(pred.value) - double(s.truth)) /
               std::max(1.0, double(s.truth));
    }
    return regime.empty() ? 0 : sum / double(regime.size());
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    const bool quick = harness::smokeMode();

    // Shared training artifact (same cache key as the rest of the
    // bench suite), trained on the default synthetic corpus — the
    // "steady" regime it has seen, roughly.
    synth::Dataset ds =
        harness::defaultDataset(harness::defaultSynthConfig());
    auto base = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        harness::defaultTrainConfig(),
                                        "main_ours");

    // Two input regimes for the same kernels: the drift is a jump in
    // the loop-bound distribution, which moves true cycle counts far
    // from the steady band.
    std::vector<Sample> steady = makeRegime({8, 12, 16, 20});
    std::vector<Sample> drifted = makeRegime(
        quick ? std::vector<long>{64, 96} : std::vector<long>{64, 96, 128});

    serve::ServeConfig cfg;
    cfg.workers = 2;
    cfg.cacheCapacity = 0; // every request computed => shadow-profiled
    cfg.calibration.enabled = true;
    cfg.calibration.shadowFraction = 1.0;
    cfg.calibration.calibSteps = quick ? 8 : 24;
    cfg.calibration.minRoundSamples = 2;
    cfg.calibration.drift.baselineSamples = 4;
    cfg.calibration.dpo.lr = 3e-3f;
    serve::PredictionServer server(base->clone(), cfg);

    // Phase 1 — steady traffic: drift baseline forms, p99 is the
    // no-swap reference.
    std::vector<double> steadyLat;
    const int steadyPasses = quick ? 2 : 4;
    for (int pass = 0; pass < steadyPasses; ++pass)
        drive(server, steady, &steadyLat);
    const double p99Steady = percentile(steadyLat, 0.99);

    // Phase 2 — the distribution jumps. First measure where the
    // uncalibrated model stands on the new regime (this traffic also
    // starts feeding the detector), then keep drifted traffic flowing
    // while rounds and swaps land mid-stream.
    const double mapeBefore = mapeOn(server, drifted);
    bench::csv("serve_calib", "mape_before_calib", mapeBefore);

    std::vector<double> swapLat;
    const int driftPasses = quick ? 3 : 6;
    for (int pass = 0; pass < driftPasses; ++pass)
        drive(server, drifted, &swapLat);

    // Give the async shadow queue a moment to drain, then force a
    // round if drift never tripped, so the swap cost is measured
    // either way.
    uint64_t forced = 0;
    for (int i = 0; i < 200 && server.stats().shadowProfiled == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (server.stats().calibSwaps == 0) {
        server.forceCalibrationRound();
        ++forced;
    }

    // Phase 3 — MAPE vs calibration iterations: more drifted traffic,
    // one forced round per step, MAPE after each.
    const int rounds = quick ? 2 : 4;
    double mapeAfter = mapeOn(server, drifted);
    bench::csv("serve_calib", "mape_round1", mapeAfter);
    for (int r = 2; r <= rounds; ++r) {
        drive(server, drifted, &swapLat);
        for (int i = 0; i < 200 && server.stats().shadowProfiled == 0; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (server.forceCalibrationRound())
            ++forced;
        mapeAfter = mapeOn(server, drifted);
        bench::csv("serve_calib",
                   ("mape_round" + std::to_string(r)).c_str(), mapeAfter);
    }
    const double p99Swap = percentile(swapLat, 0.99);

    auto stats = server.stats();
    bench::csv("serve_calib", "mape_after_calib", mapeAfter);
    bench::csv("serve_calib", "swap_count", double(stats.calibSwaps));
    bench::csv("serve_calib", "forced_rounds", double(forced));
    bench::csv("serve_calib", "model_version", double(stats.modelVersion));
    bench::csv("serve_calib", "p99_ms_steady", p99Steady);
    bench::csv("serve_calib", "p99_ms_during_swap", p99Swap);
    bench::dumpRegistryCsv("serve_calib", server.telemetry(), "calib.");

    std::printf("== live calibration under synthetic drift ==\n"
                "MAPE before=%.3f after=%.3f (swaps=%llu, forced=%llu)\n"
                "p99 steady=%.2fms during-swap=%.2fms\n",
                mapeBefore, mapeAfter,
                (unsigned long long)stats.calibSwaps,
                (unsigned long long)forced, p99Steady, p99Swap);
    server.stop();
    return 0;
}
