/**
 * @file
 * Table 8 reproduction: MAPE difference for the *baselines* with and
 * without the proposed data synthesizer. Each baseline is trained twice —
 * on the AST-only corpus (its "original dataset") and on the full
 * synthesized corpus — and the per-workload cycles-MAPE delta
 * (with-synth minus without-synth) is reported; negative values mean the
 * synthesizer helped.
 *
 * Expected shape (paper): mostly negative deltas — the synthesizer also
 * improves GNNHLS / TLP / Tenset-MLP (their averages drop by ~6 points).
 */

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"
#include "util/string_util.h"

using namespace llmulator;
using model::Metric;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 8: baseline MAPE difference with vs without the "
                "data synthesizer (static-metric average; negative = "
                "synthesizer helps)\n");

    synth::SynthConfig scfg = harness::defaultSynthConfig();
    synth::Dataset full = harness::defaultDataset(scfg);
    synth::SynthConfig no_cfg = scfg;
    no_cfg.numPrograms = static_cast<int>(full.size());
    synth::Dataset noaug = synth::synthesizeNoAugmentation(no_cfg);

    harness::TrainConfig tcfg = harness::defaultTrainConfig();
    auto tlp_full = harness::trainTlp(full, tcfg, "main");
    auto tlp_no = harness::trainTlp(noaug, tcfg, "t8_no");
    auto gnn_full = harness::trainGnnHls(full, tcfg, "main");
    auto gnn_no = harness::trainGnnHls(noaug, tcfg, "t8_no");
    auto ten_full = harness::trainTensetMlp(full, tcfg, "main");
    auto ten_no = harness::trainTensetMlp(noaug, tcfg, "t8_no");

    auto modern = workloads::modern();
    // Per-workload error averaged across the static metrics. (Cycle
    // errors of the regression baselines are range-limited artifacts —
    // expanding the training range with synthesized data widens their
    // sigmoid denormalization and can inflate the *cycles* delta even
    // while every static metric improves; the paper's baselines predict
    // per-metric too, and the static columns are where its Table 8
    // deltas live.)
    auto e = [&](const harness::PredictFn& fn) {
        std::vector<double> out(modern.size(), 0.0);
        for (Metric m : {Metric::Power, Metric::Area, Metric::FlipFlops}) {
            auto errs = harness::workloadErrors(fn, modern, m);
            for (size_t i = 0; i < errs.size(); ++i)
                out[i] += errs[i] / 3.0;
        }
        return out;
    };
    auto d_tlp_full = e(harness::predictTlp(*tlp_full));
    auto d_tlp_no = e(harness::predictTlp(*tlp_no));
    auto d_gnn_full = e(harness::predictGnnHls(*gnn_full));
    auto d_gnn_no = e(harness::predictGnnHls(*gnn_no));
    auto d_ten_full = e(harness::predictTensetMlp(*ten_full));
    auto d_ten_no = e(harness::predictTensetMlp(*ten_no));

    eval::Table t({"Workload", "Tenset", "TLP", "GNNHLS"});
    double s_ten = 0, s_tlp = 0, s_gnn = 0;
    for (size_t i = 0; i < modern.size(); ++i) {
        double dt = d_ten_full[i] - d_ten_no[i];
        double dl = d_tlp_full[i] - d_tlp_no[i];
        double dg = d_gnn_full[i] - d_gnn_no[i];
        s_ten += dt;
        s_tlp += dl;
        s_gnn += dg;
        t.addRow({std::to_string(i + 1),
                  util::format("%+.1f%%", dt * 100),
                  util::format("%+.1f%%", dl * 100),
                  util::format("%+.1f%%", dg * 100)});
    }
    t.addRow({"average",
              util::format("%+.1f%%", s_ten / modern.size() * 100),
              util::format("%+.1f%%", s_tlp / modern.size() * 100),
              util::format("%+.1f%%", s_gnn / modern.size() * 100)});
    t.print();
    std::printf("\n[shape] negative averages mean the synthesizer also "
                "helps the baselines (paper: -6.3/-7.2/-5.7 points)\n");
    bench::csv("table8", "delta_tenset", s_ten / modern.size());
    bench::csv("table8", "delta_tlp", s_tlp / modern.size());
    bench::csv("table8", "delta_gnnhls", s_gnn / modern.size());
    return 0;
}
