/**
 * @file
 * Figure 12 reproduction: cycle-prediction MAPE across memory read/write
 * delay parameters {2, 5, 10, 15} on the Table-2 workloads.
 *
 * Delay 15 lies *outside* the synthesizer's augmentation set {10, 5, 2}
 * (Section 6.3), so its column probes hardware-parameter generalization.
 *
 * Expected shape (paper): no blow-up at 15 — the out-of-distribution
 * delay stays in the same error band as the in-distribution ones
 * (20.8 / 19.6 / 16.4 / 21.4% there).
 */

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"

using namespace llmulator;

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Figure 12: cycles MAPE across memory R/W delay "
                "settings (15 is out-of-distribution)\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        harness::defaultTrainConfig(),
                                        "main_ours");
    auto modern = workloads::modern();

    const int delays[4] = {2, 5, 10, 15};
    eval::Table t({"Workload", "delay=2", "delay=5", "delay=10",
                   "delay=15"});
    double avg[4] = {0, 0, 0, 0};
    std::vector<std::vector<double>> errs(4);
    for (int di = 0; di < 4; ++di) {
        auto ws = modern;
        for (auto& w : ws) {
            w.graph.params.memReadDelay = delays[di];
            w.graph.params.memWriteDelay = delays[di];
        }
        for (const auto& w : ws)
            errs[di].push_back(
                harness::calibratedCyclesError(*ours, w, 5));
    }
    for (size_t i = 0; i < modern.size(); ++i) {
        std::vector<std::string> row = {modern[i].name};
        for (int di = 0; di < 4; ++di) {
            row.push_back(eval::pct(errs[di][i]));
            avg[di] += errs[di][i] / modern.size();
        }
        t.addRow(row);
    }
    t.addRow({"average", eval::pct(avg[0]), eval::pct(avg[1]),
              eval::pct(avg[2]), eval::pct(avg[3])});
    t.print();
    std::printf("\n[shape] averages %.1f%% / %.1f%% / %.1f%% / %.1f%% — "
                "delay 15 (OOD) should stay in band (paper: 20.8 / 19.6 "
                "/ 16.4 / 21.4%%)\n",
                avg[0] * 100, avg[1] * 100, avg[2] * 100, avg[3] * 100);
    for (int di = 0; di < 4; ++di) {
        char metric[32];
        std::snprintf(metric, sizeof metric, "mape_cycles_delay%d",
                      delays[di]);
        bench::csv("fig12", metric, avg[di]);
    }
    return 0;
}
