/**
 * @file
 * Table 9 reproduction: impact of data-dependency length on prediction
 * latency with dynamic prediction acceleration.
 *
 * DataDepLen is the byte length of the input-dependent (Class II)
 * operator text; DataLength is the total dataflow text length. The sweep
 * holds the total roughly constant while shifting bytes between the
 * input-dependent operator and an input-independent (Class I) one —
 * exactly the knob that controls how many rows the Section 5.3 cache may
 * reuse.
 *
 * Expected shape (paper): OptTime <= NoOptTime across the sweep, with a
 * stable gap (std-dev ~0.13s there); the win shrinks as DataDepLen grows
 * (fewer reusable rows).
 */

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "dfir/builder.h"
#include "dfir/printer.h"
#include "eval/table.h"
#include "harness/harness.h"
#include "model/fast_encoder.h"
#include "synth/generators.h"
#include "util/string_util.h"

using namespace llmulator;
using namespace llmulator::dfir;
using Clock = std::chrono::steady_clock;

namespace {

/**
 * Build a two-operator program where the Class II (input-dependent)
 * operator has 'dep_stmts' branchy statements and the Class I operator
 * has 'static_stmts' straight-line statements.
 */
DataflowGraph
makeSweepGraph(int dep_stmts, int static_stmts)
{
    Operator dyn;
    dyn.name = "dynop";
    dyn.scalarParams = {"N"};
    dyn.tensors = {tensor("X", {p("N")}), tensor("Y", {p("N")})};
    std::vector<StmtPtr> dyn_body;
    for (int i = 0; i < dep_stmts; ++i)
        dyn_body.push_back(ifStmt(
            bgt(a("X", {v("i")}), c(10 + i)),
            {assign("Y", {v("i")},
                    bmul(a("X", {v("i")}), c(2 + i)))},
            {assign("Y", {v("i")}, c(i))}));
    dyn.body = {forLoop("i", c(0), p("N"), dyn_body)};

    Operator stat;
    stat.name = "statop";
    stat.tensors = {tensor("U", {c(32)}), tensor("V", {c(32)})};
    std::vector<StmtPtr> stat_body;
    for (int i = 0; i < static_stmts; ++i)
        stat_body.push_back(
            assign("V", {v("i")},
                   badd(bmul(a("U", {v("i")}), c(3 + i)), c(i))));
    stat.body = {forLoop("i", c(0), c(32), stat_body)};

    DataflowGraph g;
    g.name = "sweep";
    g.ops = {dyn, stat};
    g.calls = {{"dynop"}, {"statop"}};
    return g;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 9: data-dependency length vs prediction latency "
                "with dynamic prediction acceleration\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        harness::defaultTrainConfig(),
                                        "main_ours");

    eval::Table t({"DataDepLen", "DataLength", "NoOptTime", "OptTime",
                   "Speedup"});
    std::vector<double> speedups;
    // Shift statements from the Class I operator to the Class II one.
    for (int dep = 0; dep <= 12; dep += 2) {
        DataflowGraph g = makeSweepGraph(1 + dep, 13 - dep);
        util::Rng rng(0x99 + dep);
        dfir::RuntimeData prime = synth::generateRuntimeData(g, rng, 24);
        dfir::RuntimeData probe = synth::generateRuntimeData(g, rng, 24);

        // Byte lengths as the paper reports them.
        size_t dep_len = 0, total_len = dfir::printStatic(g).size();
        for (const auto& op : g.ops)
            if (op.name == "dynop")
                dep_len = dfir::printOperator(op).size();

        auto ep_prime = ours->encode(g, &prime);
        auto ep_probe = ours->encode(g, &probe);

        model::InferenceSession cold(*ours);
        auto t0 = Clock::now();
        for (int r = 0; r < 3; ++r)
            cold.predict(ep_probe, model::Metric::Cycles, false);
        double noopt =
            std::chrono::duration<double>(Clock::now() - t0).count() / 3;

        model::InferenceSession warm(*ours);
        warm.predict(ep_prime, model::Metric::Cycles, true);
        auto t1 = Clock::now();
        for (int r = 0; r < 3; ++r)
            warm.predict(ep_probe, model::Metric::Cycles, true);
        double opt =
            std::chrono::duration<double>(Clock::now() - t1).count() / 3;

        speedups.push_back(noopt / std::max(1e-12, opt));
        t.addRow({std::to_string(dep_len), std::to_string(total_len),
                  eval::secs(noopt), eval::secs(opt),
                  util::format("%.2fx", speedups.back())});
    }
    t.print();

    double mean = 0;
    for (double s : speedups)
        mean += s / speedups.size();
    std::printf("\n[shape] mean speedup %.2fx; acceleration stays "
                "effective across dependency lengths (paper: stable gap, "
                "up to 30.6%% reduction)\n", mean);
    bench::csv("table9", "mean_accel_speedup", mean);
    return 0;
}
