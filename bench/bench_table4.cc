/**
 * @file
 * Table 4 reproduction: per-prediction runtime latency (seconds) on the
 * PolyBench kernels for GNNHLS, Tenset-MLP, TLP and LLMulator.
 *
 * Expected shape (paper): Ours is roughly an order of magnitude slower
 * than the lightweight baselines (1.01s vs 0.08-0.21s there) because the
 * LLM forward + digit-wise beam decode dominates; the baselines are one
 * small forward pass each.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "harness/harness.h"

using namespace llmulator;
using Clock = std::chrono::steady_clock;

namespace {

double
timeIt(const std::function<void()>& fn, int reps = 3)
{
    // One warmup, then the mean of reps.
    fn();
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i)
        fn();
    auto t1 = Clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 4: prediction latency (seconds) on PolyBench\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    harness::TrainConfig tcfg = harness::defaultTrainConfig();
    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        tcfg, "main_ours");
    auto tlp = harness::trainTlp(ds, tcfg, "main");
    auto gnn = harness::trainGnnHls(ds, tcfg, "main");
    auto tenset = harness::trainTensetMlp(ds, tcfg, "main");

    auto poly = workloads::polybench();
    eval::Table t({"Method", "adi", "atax", "bicg", "corre.", "covar.",
                   "deriche", "fdtd-2d", "heat-3d", "jacobi.", "seidel.",
                   "avg"});

    auto fn_ours = harness::predictOurs(*ours);
    auto fn_tlp = harness::predictTlp(*tlp);
    auto fn_gnn = harness::predictGnnHls(*gnn);
    auto fn_tenset = harness::predictTensetMlp(*tenset);

    struct Row
    {
        const char* name;
        harness::PredictFn fn;
    };
    std::vector<Row> rows = {{"GNNHLS", fn_gnn},
                             {"Tenset", fn_tenset},
                             {"TLP", fn_tlp},
                             {"Ours", fn_ours}};

    std::vector<std::vector<double>> lat(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
        std::vector<std::string> cells = {rows[r].name};
        double sum = 0;
        for (const auto& w : poly) {
            double s = timeIt([&] {
                rows[r].fn(w, model::Metric::Cycles);
            });
            lat[r].push_back(s);
            sum += s;
            cells.push_back(eval::secs(s));
        }
        cells.push_back(eval::secs(sum / poly.size()));
        t.addRow(cells);
    }
    t.print();

    auto avg = [&](size_t r) {
        double s = 0;
        for (double v : lat[r])
            s += v;
        return s / lat[r].size();
    };
    std::printf("\n[shape] Ours/GNNHLS latency ratio: %.1fx (paper: "
                "~9x; LLM forward + beam decode dominates)\n",
                avg(3) / std::max(1e-9, avg(0)));
    bench::csv("table4", "latency_gnnhls_s", avg(0));
    bench::csv("table4", "latency_tenset_s", avg(1));
    bench::csv("table4", "latency_tlp_s", avg(2));
    bench::csv("table4", "latency_ours_s", avg(3));
    bench::csv("table4", "latency_ratio_ours_gnnhls",
               avg(3) / std::max(1e-9, avg(0)));
    return 0;
}
