/**
 * @file
 * Table 3 reproduction: MAPE comparison on PolyBench and the modern
 * (Table 2) workloads, for the static metrics (Power / Area / FF) and the
 * dynamic metric (Cycles), across
 *   NoEnc (progressive-encoding ablation), Ours, GNNHLS, Tenset-MLP, TLP
 * for static metrics and
 *   NoDPO (calibration ablation), Ours, GNNHLS, Tenset-MLP, TLP
 * for cycles — plus the TPU / Eyeriss / ShiDianNao transfer rows of the
 * Section 7.4 case study.
 *
 * Expected shapes (paper): Ours < TLP < GNNHLS on average; NoEnc worse
 * than Ours on static metrics; NoDPO worse than Ours on cycles; the
 * accelerator rows stay in the ~10% band without retraining.
 */

#include <cctype>
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "harness/harness.h"
#include "util/string_util.h"

using namespace llmulator;
using model::Metric;

namespace {

struct MethodErrors
{
    std::vector<double> noenc, ours, gnn, tenset, tlp;
};

void
printMetricTable(const char* title, const char* abl_name,
                 const std::vector<workloads::Workload>& ws,
                 const MethodErrors& e, size_t offset)
{
    std::printf("\n-- %s --\n", title);
    eval::Table t({"Benchmark", abl_name, "Ours", "GNNHLS", "Tenset",
                   "TLP"});
    for (size_t i = 0; i < ws.size(); ++i) {
        size_t k = offset + i;
        t.addRow({ws[i].name, eval::pct(e.noenc[k]), eval::pct(e.ours[k]),
                  eval::pct(e.gnn[k]), eval::pct(e.tenset[k]),
                  eval::pct(e.tlp[k])});
    }
    auto avg = [&](const std::vector<double>& v) {
        std::vector<double> slice(v.begin() + offset,
                                  v.begin() + offset + ws.size());
        return eval::mean(slice);
    };
    t.addRow({util::format("average(%zu)", ws.size()),
              eval::pct(avg(e.noenc)), eval::pct(avg(e.ours)),
              eval::pct(avg(e.gnn)), eval::pct(avg(e.tenset)),
              eval::pct(avg(e.tlp))});
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Table 3: MAPE comparison with ablation of progressive "
                "encoding and dynamic calibration\n");

    synth::Dataset ds = harness::defaultDataset(harness::defaultSynthConfig());
    harness::TrainConfig tcfg = harness::defaultTrainConfig();
    std::printf("[setup] dataset: %zu samples\n", ds.size());

    auto ours = harness::trainCostModel(harness::defaultOursConfig(), ds,
                                        tcfg, "main_ours");
    auto noenc =
        harness::trainCostModel(harness::noEncConfig(), ds, tcfg,
                                "main_noenc");
    auto tlp = harness::trainTlp(ds, tcfg, "main");
    auto gnn = harness::trainGnnHls(ds, tcfg, "main");
    auto tenset = harness::trainTensetMlp(ds, tcfg, "main");
    std::printf("[setup] models trained (or loaded from cache)\n");

    auto poly = workloads::polybench();
    auto modern = workloads::modern();
    auto accel = workloads::accelerators();
    std::vector<workloads::Workload> all;
    for (const auto* suite : {&poly, &modern, &accel})
        for (const auto& w : *suite)
            all.push_back(w);

    auto fn_ours = harness::predictOurs(*ours);
    auto fn_noenc = harness::predictOurs(*noenc);
    auto fn_tlp = harness::predictTlp(*tlp);
    auto fn_gnn = harness::predictGnnHls(*gnn);
    auto fn_tenset = harness::predictTensetMlp(*tenset);

    // Static metrics.
    for (Metric m : {Metric::Power, Metric::Area, Metric::FlipFlops}) {
        MethodErrors e;
        e.noenc = harness::workloadErrors(fn_noenc, all, m);
        e.ours = harness::workloadErrors(fn_ours, all, m);
        e.gnn = harness::workloadErrors(fn_gnn, all, m);
        e.tenset = harness::workloadErrors(fn_tenset, all, m);
        e.tlp = harness::workloadErrors(fn_tlp, all, m);
        std::string title =
            util::format("Static-%s", model::metricName(m));
        printMetricTable((title + " (PolyBench)").c_str(), "NoEnc", poly, e,
                         0);
        printMetricTable((title + " (Modern, Tab.2)").c_str(), "NoEnc",
                         modern, e, poly.size());
        printMetricTable((title + " (Accelerators)").c_str(), "NoEnc",
                         accel, e, poly.size() + modern.size());
        std::string mname = model::metricName(m);
        for (char& ch : mname)
            ch = static_cast<char>(std::tolower(ch));
        bench::csv("table3", ("mape_ours_" + mname).c_str(),
                   eval::mean(e.ours));
        bench::csv("table3", ("mape_noenc_" + mname).c_str(),
                   eval::mean(e.noenc));
        bench::csv("table3", ("mape_tlp_" + mname).c_str(),
                   eval::mean(e.tlp));
        bench::csv("table3", ("mape_gnnhls_" + mname).c_str(),
                   eval::mean(e.gnn));
        bench::csv("table3", ("mape_tenset_" + mname).c_str(),
                   eval::mean(e.tenset));
    }

    // Dynamic cycles: NoDPO = our static model without calibration;
    // Ours = after 5 DPO iterations over the input variants.
    {
        MethodErrors e;
        e.noenc = harness::workloadErrors(fn_ours, all, Metric::Cycles);
        e.ours.reserve(all.size());
        for (const auto& w : all)
            e.ours.push_back(
                harness::calibratedCyclesError(*ours, w, 5));
        e.gnn = harness::workloadErrors(fn_gnn, all, Metric::Cycles);
        e.tenset =
            harness::workloadErrors(fn_tenset, all, Metric::Cycles);
        e.tlp = harness::workloadErrors(fn_tlp, all, Metric::Cycles);
        printMetricTable("Dynamic-Cycles (PolyBench)", "NoDPO", poly, e, 0);
        printMetricTable("Dynamic-Cycles (Modern, Tab.2)", "NoDPO", modern,
                         e, poly.size());
        printMetricTable("Dynamic-Cycles (Accelerators)", "NoDPO", accel, e,
                         poly.size() + modern.size());

        double avg_nodpo = eval::mean(e.noenc);
        double avg_ours = eval::mean(e.ours);
        std::printf("\n[shape] cycles MAPE: NoDPO %.1f%% -> Ours (DPO) "
                    "%.1f%% (paper: 28.9%% -> 16.4%% on modern)\n",
                    avg_nodpo * 100, avg_ours * 100);
        bench::csv("table3", "mape_nodpo_cycles", avg_nodpo);
        bench::csv("table3", "mape_ours_cycles", avg_ours);
    }
    return 0;
}
