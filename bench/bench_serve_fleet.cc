/**
 * @file
 * Fleet-serving benchmark: a FleetServer (sharded PredictionServers
 * behind the loopback TCP front-end) driven by the fleet simulator
 * across fleet sizes and popularity skews. The grid is
 * {8, 64} client threads x Zipf skew {0, 1}: skew 0 replays the corpus
 * uniformly, skew 1 is the heavy-tailed mix a real device fleet
 * produces — which is where canonical-hash sharding plus the result
 * caches pay off as a climbing hit rate and falling tail latency.
 *
 * CSV lines (name,metric,value):
 *   serve_fleet,hw_threads,<hardware concurrency>
 *   serve_fleet,corpus,<distinct programs in the replay corpus>
 *   serve_fleet,rps_c<N>_s<K>,<ok req/s, N clients, Zipf skew K>
 *   serve_fleet,p99_ms_c<N>_s<K>,<client-observed p99 round trip, ms>
 *   serve_fleet,hit_rate_c<N>_s<K>,<cache-served fraction of Ok answers>
 *   serve_fleet,overload_rate_c<N>_s<K>,<OVERLOADED fraction of calls>
 *   serve_fleet,net.*,<front-end registry rows from the last config>
 *
 * The model is an untrained Tiny CostModel: weight init is seeded, so
 * runs are reproducible, and serving throughput does not depend on
 * what the weights converged to — only on tensor shapes, which is
 * what this bench measures.
 */

#include <thread>
#include <vector>

#include "bench_common.h"
#include "dfir/builder.h"
#include "eval/table.h"
#include "harness/harness.h"
#include "net/fleet_server.h"
#include "net/fleet_sim.h"
#include "util/string_util.h"

using namespace llmulator;
using namespace llmulator::dfir;

namespace {

/** One corpus kernel: Y[i] = X[i] + bias over an N-element vector. */
net::SimQuery
scaleQuery(long idx)
{
    Operator op;
    op.name = "scale";
    op.scalarParams = {"N"};
    op.tensors = {tensor("X", {p("N")}), tensor("Y", {p("N")})};
    op.body = {forLoop("i", c(0), p("N"),
                       {assign("Y", {v("i")},
                               badd(a("X", {v("i")}), c(idx + 1)))})};
    DataflowGraph g;
    g.name = util::format("fleet-%ld", idx);
    g.ops = {op};
    g.calls = {{"scale"}};

    RuntimeData d;
    d.scalars["N"] = 16 + (idx % 7) * 8;
    auto metric = static_cast<model::Metric>(idx % model::kNumMetrics);
    return net::makeSimQuery(
        g, metric == model::Metric::Cycles ? &d : nullptr, metric);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::parseArgs(argc, argv);
    const bool quick = harness::smokeMode();

    auto model = std::make_unique<model::CostModel>([] {
        auto cfg = model::configForScale(model::ModelScale::Tiny);
        cfg.enc.maxSeq = 128;
        return cfg;
    }());

    const long corpusSize = quick ? 8 : 24;
    std::vector<net::SimQuery> corpus;
    corpus.reserve(size_t(corpusSize));
    for (long i = 0; i < corpusSize; ++i)
        corpus.push_back(scaleQuery(i));

    bench::csv("serve_fleet", "hw_threads",
               double(std::thread::hardware_concurrency()));
    bench::csv("serve_fleet", "corpus", double(corpusSize));

    eval::Table table(
        {"clients", "skew", "req/s", "p99 (ms)", "hit rate", "overload"});
    std::unique_ptr<net::FleetServer> lastFleet;
    for (int clients : {8, 64}) {
        for (int skew : {0, 1}) {
            net::FleetConfig cfg;
            cfg.shards = 4;
            cfg.serve.workers = 2;
            auto fleet = std::make_unique<net::FleetServer>(
                model->clone(), cfg);
            fleet->start();

            net::SimConfig sim;
            sim.clients = clients;
            sim.requestsPerClient = quick ? 8 : 64;
            sim.zipfSkew = double(skew);
            sim.seed = 42 + uint64_t(clients) * 10 + uint64_t(skew);
            net::SimResult res =
                net::runFleet(fleet->port(), corpus, sim);

            net::FleetStats stats = fleet->stats();
            double calls = double(res.ok + res.overloaded + res.failed);
            double overloadRate =
                calls <= 0 ? 0 : double(res.overloaded) / calls;
            table.addRow({std::to_string(clients), std::to_string(skew),
                          util::format("%.1f", res.rps),
                          util::format("%.2f", res.p99Ms),
                          util::format("%.1f%%", stats.hitRate() * 100.0),
                          util::format("%.1f%%", overloadRate * 100.0)});
            const std::string tag =
                util::format("_c%d_s%d", clients, skew);
            bench::csv("serve_fleet", ("rps" + tag).c_str(), res.rps);
            bench::csv("serve_fleet", ("p99_ms" + tag).c_str(), res.p99Ms);
            bench::csv("serve_fleet", ("hit_rate" + tag).c_str(),
                       stats.hitRate());
            bench::csv("serve_fleet", ("overload_rate" + tag).c_str(),
                       overloadRate);
            fleet->stop();
            lastFleet = std::move(fleet); // keep for the registry dump
        }
    }
    std::printf("== fleet serving (4 shards, 2 workers each) ==\n");
    table.print();

    // Front-end telemetry of the last (largest, most skewed) config.
    bench::dumpRegistryCsv("serve_fleet", lastFleet->telemetry());
    return 0;
}
